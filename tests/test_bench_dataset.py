import numpy as np
import pytest

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.errors import TrainingError
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)


@pytest.fixture(scope="module")
def space():
    return cassandra_space()


def make_dataset(space, n_configs=6, n_workloads=5, seed=0):
    rng = np.random.default_rng(seed)
    configs = [space.sample_configuration(rng, PARAMS) for _ in range(n_configs)]
    samples = []
    for ci, config in enumerate(configs):
        for wi in range(n_workloads):
            rr = wi / (n_workloads - 1)
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=rr),
                    configuration=config,
                    throughput=1000.0 * (ci + 1) + 100 * wi,
                )
            )
    return PerformanceDataset(samples, PARAMS)


class TestEncoding:
    def test_feature_matrix_shape(self, space):
        ds = make_dataset(space)
        assert ds.features().shape == (30, 1 + len(PARAMS))

    def test_first_feature_is_rr(self, space):
        ds = make_dataset(space)
        assert set(np.round(ds.features()[:, 0], 2)) == {0.0, 0.25, 0.5, 0.75, 1.0}

    def test_features_unit_scaled(self, space):
        ds = make_dataset(space)
        f = ds.features()
        assert f.min() >= 0.0 and f.max() <= 1.0

    def test_targets(self, space):
        ds = make_dataset(space)
        assert len(ds.targets()) == 30

    def test_empty_dataset_raises(self, space):
        with pytest.raises(TrainingError):
            PerformanceDataset([], PARAMS).features()

    def test_feature_names(self, space):
        ds = make_dataset(space)
        assert ds.feature_names[0] == "read_ratio"
        assert len(ds.feature_names) == 1 + len(PARAMS)


class TestSplits:
    def test_config_split_is_disjoint(self, space):
        ds = make_dataset(space)
        train, test = ds.split_by_configuration(0.25, np.random.default_rng(1))
        train_cfgs = set(train.distinct_configurations())
        test_cfgs = set(test.distinct_configurations())
        assert train_cfgs.isdisjoint(test_cfgs)
        assert len(train) + len(test) == len(ds)

    def test_workload_split_is_disjoint(self, space):
        ds = make_dataset(space)
        train, test = ds.split_by_workload(0.25, np.random.default_rng(1))
        assert set(train.distinct_read_ratios()).isdisjoint(test.distinct_read_ratios())

    def test_split_fraction_validated(self, space):
        ds = make_dataset(space)
        with pytest.raises(TrainingError):
            ds.split_by_configuration(0.0, np.random.default_rng(0))

    def test_split_leaves_training_data(self, space):
        ds = make_dataset(space)
        train, _ = ds.split_by_configuration(0.9, np.random.default_rng(0))
        assert len(train) > 0

    def test_take_first_n(self, space):
        ds = make_dataset(space)
        assert len(ds.take(7)) == 7

    def test_take_random(self, space):
        ds = make_dataset(space)
        sub = ds.take(10, np.random.default_rng(3))
        assert len(sub) == 10

    def test_take_too_many(self, space):
        ds = make_dataset(space)
        with pytest.raises(TrainingError):
            ds.take(1000)


class TestPersistence:
    def test_json_round_trip(self, space):
        ds = make_dataset(space, n_configs=3, n_workloads=3)
        text = ds.to_json()
        back = PerformanceDataset.from_json(text, space)
        assert len(back) == len(ds)
        assert np.allclose(back.features(), ds.features())
        assert np.allclose(back.targets(), ds.targets())

    def test_sample_from_result(self, space):
        from repro.bench.metrics import BenchmarkResult

        result = BenchmarkResult(
            workload=WorkloadSpec(read_ratio=0.4),
            configuration=space.default_configuration(),
            mean_throughput=5555.0,
            duration_seconds=10.0,
        )
        sample = PerformanceSample.from_result(result)
        assert sample.throughput == 5555.0
        assert sample.workload.read_ratio == 0.4
