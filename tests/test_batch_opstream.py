"""Batch-vs-scalar equivalence of the vectorized op-stream hot path.

PR 2's batch≡scalar convention, applied to execution: an
:class:`~repro.workload.generator.OperationBatch` pushed through
:meth:`~repro.lsm.engine.LSMEngine.execute_batch` must leave the engine
in the *bit-identical* state (stats, simulated clock, cache, layout)
that iterating the same block through ``get``/``put``/``delete`` one op
at a time would, and the supporting vectorized pieces (FNV hashing,
bloom bulk ops, key-distribution batch draws) must match their scalar
references exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.datastore import CassandraLike
from repro.lsm.bloom import BloomFilter, _fnv1a, hash_keys
from repro.lsm.engine import OP_WRITE, LSMEngine
from repro.sim.hardware import HardwareSpec
from repro.workload.generator import OperationGenerator
from repro.workload.keydist import (
    ExponentialReuseKeyDistribution,
    UniformKeyDistribution,
    ZipfianKeyDistribution,
)
from repro.workload.spec import DELETE, READ, WorkloadSpec

from .conftest import MB, make_knobs


def small_hardware() -> HardwareSpec:
    return HardwareSpec(
        name="test-box",
        cpu_cores=4,
        cpu_ghz=3.0,
        ram_bytes=4 * MB,
        disk_seq_bandwidth=16 * MB,
        disk_rand_iops=2_000.0,
        disk_count=1,
        net_bandwidth=10 * MB,
    )


def twin_engines(strategy):
    """Two engines in identical states; one per execution path."""
    return (
        LSMEngine(make_knobs(compaction_method=strategy), small_hardware()),
        LSMEngine(make_knobs(compaction_method=strategy), small_hardware()),
    )


def apply_scalar(engine: LSMEngine, block) -> list:
    """The reference path: one op at a time, tracing the clock."""
    trace = []
    for op in block.iter_operations():
        if op.kind == READ:
            engine.get(op.key)
        elif op.kind == DELETE:
            engine.delete(op.key)
        else:
            engine.put(op.key, bytes(op.value_bytes))
        trace.append(engine.clock.now)
    return trace


def engine_state(engine: LSMEngine) -> tuple:
    return (
        engine.stats,
        engine.clock.now,
        engine.cache.hit_ratio,
        engine.sstable_count,
        engine.memtable.size_bytes,
        engine.compaction_backlog_bytes,
    )


class TestExecuteBatchEquivalence:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        read_ratio=st.floats(min_value=0.0, max_value=0.9),
        delete_fraction=st.sampled_from([0.0, 0.05]),
        update_fraction=st.floats(min_value=0.0, max_value=1.0),
        strategy=st.sampled_from([SIZE_TIERED, LEVELED]),
        n_ops=st.integers(min_value=20, max_value=300),
    )
    def test_same_block_identical_state_and_clock(
        self, seed, read_ratio, delete_fraction, update_fraction, strategy, n_ops
    ):
        spec = WorkloadSpec(
            read_ratio=read_ratio,
            n_keys=500,
            value_bytes=200,
            update_fraction=update_fraction,
            delete_fraction=delete_fraction,
            krd_mean_ops=50,
        )
        gen = OperationGenerator(spec, np.random.default_rng(seed))
        batched, scalar = twin_engines(strategy)

        load = gen.load_batch(150)
        batched.execute_batch(load.kinds, load.key_names(), load.value_sizes)
        apply_scalar(scalar, load)
        assert engine_state(batched) == engine_state(scalar)

        # Two blocks so the second starts from mid-flight flush /
        # compaction state rather than a fresh engine.
        for _ in range(2):
            block = gen.operation_batch(n_ops)
            result = batched.execute_batch(
                block.kinds, block.key_names(), block.value_sizes
            )
            trace = apply_scalar(scalar, block)
            assert engine_state(batched) == engine_state(scalar)
            # The recorded per-op end times are the scalar clock trace.
            assert np.array_equal(result.end_times, np.array(trace))

    def test_write_heavy_run_crosses_flush_and_compaction(self):
        """The equivalence must hold *through* background work."""
        spec = WorkloadSpec(
            read_ratio=0.2, n_keys=300, value_bytes=400, update_fraction=0.3
        )
        gen = OperationGenerator(spec, np.random.default_rng(9))
        batched, scalar = twin_engines(SIZE_TIERED)
        for _ in range(4):
            block = gen.operation_batch(250)
            batched.execute_batch(block.kinds, block.key_names(), block.value_sizes)
            apply_scalar(scalar, block)
        assert batched.stats.flushes > 0
        assert batched.stats.compactions_started > 0
        assert engine_state(batched) == engine_state(scalar)

    def test_batch_counts_by_kind(self):
        spec = WorkloadSpec(read_ratio=0.6, n_keys=200, delete_fraction=0.1)
        gen = OperationGenerator(spec, np.random.default_rng(4))
        engine, _ = twin_engines(SIZE_TIERED)
        load = gen.load_batch(50)
        engine.execute_batch(load.kinds, load.key_names(), load.value_sizes)
        block = gen.operation_batch(120)
        result = engine.execute_batch(
            block.kinds, block.key_names(), block.value_sizes
        )
        kinds = [op.kind for op in block.iter_operations()]
        assert result.n_ops == 120
        assert result.reads == kinds.count(READ)
        assert result.deletes == kinds.count(DELETE)
        assert result.writes == 120 - result.reads - result.deletes


class TestGeneratorBatches:
    def test_load_batch_matches_load_operations(self):
        spec = WorkloadSpec(read_ratio=0.5, n_keys=100, value_bytes=64)
        scalar_gen = OperationGenerator(spec, np.random.default_rng(1))
        batch_gen = OperationGenerator(spec, np.random.default_rng(1))
        scalar_ops = list(scalar_gen.load_operations(40))
        block = batch_gen.load_batch(40)
        assert [op.key for op in scalar_ops] == block.key_names()
        assert np.all(block.kinds == OP_WRITE)
        assert np.all(block.value_sizes == spec.value_bytes)
        assert scalar_gen._next_insert_id == batch_gen._next_insert_id

    def test_operation_batch_is_seed_deterministic(self):
        spec = WorkloadSpec(read_ratio=0.7, n_keys=300, krd_mean_ops=40)

        def draw():
            gen = OperationGenerator(spec, np.random.default_rng(11))
            gen.load_batch(100)
            b = gen.operation_batch(200)
            return b.kinds.copy(), b.key_ids.copy(), b.value_sizes.copy()

        a, b = draw(), draw()
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_read_ratio_override(self):
        spec = WorkloadSpec(read_ratio=0.1, n_keys=100)
        gen = OperationGenerator(spec, np.random.default_rng(2), loaded_keys=100)
        block = gen.operation_batch(2000, read_ratio=0.95)
        reads = sum(1 for op in block.iter_operations() if op.kind == READ)
        assert reads / 2000 > 0.85


class TestKeyDistributionBatches:
    @pytest.mark.parametrize(
        "dist_cls", [UniformKeyDistribution, ZipfianKeyDistribution]
    )
    def test_batch_stream_identical_to_scalar(self, dist_cls):
        scalar_dist, batch_dist = dist_cls(n_keys=1000), dist_cls(n_keys=1000)
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        scalar = [scalar_dist.next_key(rng_a) for _ in range(500)]
        batch = batch_dist.next_keys(rng_b, 500)
        assert np.array_equal(np.array(scalar), batch)

    def test_exponential_reuse_batch_deterministic_and_bounded(self):
        def draw():
            dist = ExponentialReuseKeyDistribution(n_keys=500, mean_reuse_distance=30)
            rng = np.random.default_rng(13)
            return dist.next_keys(rng, 400), dist

        a, dist_a = draw()
        b, dist_b = draw()
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 500
        # Bookkeeping advanced as if the keys were drawn one at a time.
        assert dist_a._count == 400
        assert len(dist_a._history) == 400
        assert dist_a._last_seen == dist_b._last_seen

    def test_exponential_reuse_batch_actually_reuses(self):
        dist = ExponentialReuseKeyDistribution(n_keys=100_000, mean_reuse_distance=20)
        keys = dist.next_keys(np.random.default_rng(3), 2000)
        # With an 0.8 reuse probability and a tiny mean distance, a
        # 2000-op draw over a 100k keyspace must repeat keys heavily.
        assert len(np.unique(keys)) < 1200


class TestBloomBatches:
    KEYS = [f"user{i:012d}" for i in range(200)]

    def test_hash_keys_matches_scalar_fnv(self):
        hashed = hash_keys(np.asarray(self.KEYS))
        assert hashed is not None
        h1, h2 = hashed
        for i, key in enumerate(self.KEYS):
            data = key.encode("utf-8")
            assert int(h1[i]) == _fnv1a(data, seed=0x9E3779B9)
            assert int(h2[i]) == (_fnv1a(data, seed=0x85EBCA6B) | 1)

    def test_hash_keys_refuses_non_ascii_and_embedded_nul(self):
        assert hash_keys(np.asarray(["café", "user1"])) is None
        assert hash_keys(np.asarray(["a\x00b"])) is None

    def test_add_many_bit_identical_to_sequential_add(self):
        scalar = BloomFilter(expected_items=200, fp_chance=0.01)
        batch = BloomFilter(expected_items=200, fp_chance=0.01)
        for key in self.KEYS:
            scalar.add(key)
        batch.add_many(*hash_keys(np.asarray(self.KEYS)))
        assert bytes(scalar._bits) == bytes(batch._bits)
        assert scalar.n_items == batch.n_items

    def test_might_contain_many_matches_scalar_probe(self):
        bf = BloomFilter.from_keys(self.KEYS, fp_chance=0.01)
        probes = self.KEYS[::3] + [f"miss{i:08d}" for i in range(100)]
        hits = bf.might_contain_many(*hash_keys(np.asarray(probes)))
        assert hits.tolist() == [bf.might_contain(k) for k in probes]


class TestRunEngineTail:
    def test_partial_final_interval_is_reported(self):
        """A report interval longer than the whole run must still yield
        a series — the tail used to vanish on the engine path."""
        from repro.bench.ycsb import YCSBBenchmark

        datastore = CassandraLike()
        bench = YCSBBenchmark(datastore, report_interval=1e9)
        workload = WorkloadSpec(read_ratio=0.8, n_keys=500, krd_mean_ops=50)
        for batched in (False, True):
            result = bench.run_engine(
                datastore.default_configuration(),
                workload,
                n_ops=400,
                load_keys=150,
                seed=3,
                batched=batched,
            )
            assert len(result.series) >= 1
            assert result.series[-1].ops_per_second > 0
