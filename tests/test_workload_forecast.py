import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.forecast import (
    ExponentialSmoothingForecaster,
    LastValueForecaster,
    MarkovRegimeForecaster,
    forecast_series,
)
from repro.workload.mgrast import MGRastTraceGenerator


class TestLastValue:
    def test_predicts_last(self):
        f = LastValueForecaster()
        f.update(0.9)
        assert f.predict() == 0.9

    def test_initial_prior(self):
        assert LastValueForecaster(initial=0.3).predict() == 0.3

    def test_validates_input(self):
        with pytest.raises(WorkloadError):
            LastValueForecaster().update(1.5)


class TestExponentialSmoothing:
    def test_moves_toward_observations(self):
        f = ExponentialSmoothingForecaster(alpha=0.5, initial=0.0)
        f.update(1.0)
        assert f.predict() == pytest.approx(0.5)
        f.update(1.0)
        assert f.predict() == pytest.approx(0.75)

    def test_alpha_one_is_last_value(self):
        f = ExponentialSmoothingForecaster(alpha=1.0)
        f.update(0.8)
        assert f.predict() == pytest.approx(0.8)

    def test_alpha_validated(self):
        with pytest.raises(WorkloadError):
            ExponentialSmoothingForecaster(alpha=0.0)

    def test_smooths_oscillation(self):
        f = ExponentialSmoothingForecaster(alpha=0.3, initial=0.5)
        for rr in [0.4, 0.6] * 10:
            f.update(rr)
        assert 0.4 < f.predict() < 0.6


class TestMarkovRegime:
    def test_prior_is_half(self):
        assert MarkovRegimeForecaster().predict() == 0.5

    def test_learns_persistence(self):
        f = MarkovRegimeForecaster(n_bins=4)
        for _ in range(30):
            f.update(0.9)
        assert f.predict() > 0.7

    def test_learns_alternation(self):
        """A strictly alternating regime should be predicted as a switch."""
        f = MarkovRegimeForecaster(n_bins=2, smoothing=0.1)
        for _ in range(40):
            f.update(0.9)
            f.update(0.1)
        # Last observation was 0.1, so the chain should predict high RR.
        assert f.predict() > 0.6
        f.update(0.9)
        assert f.predict() < 0.4

    def test_transition_matrix_rows_normalized(self):
        f = MarkovRegimeForecaster(n_bins=3)
        for rr in [0.1, 0.5, 0.9, 0.1, 0.5]:
            f.update(rr)
        matrix = f.transition_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_predictions_bounded(self):
        rng = np.random.default_rng(0)
        f = MarkovRegimeForecaster()
        for _ in range(100):
            f.update(float(rng.random()))
            assert 0.0 <= f.predict() <= 1.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MarkovRegimeForecaster(n_bins=1)
        with pytest.raises(WorkloadError):
            MarkovRegimeForecaster(smoothing=0.0)


class TestForecastSeries:
    def test_one_step_ahead_alignment(self):
        preds = forecast_series(LastValueForecaster(initial=0.5), np.array([0.1, 0.9]))
        assert preds == [0.5, 0.1]

    def test_never_sees_future(self):
        """Prediction for window i cannot depend on windows >= i."""
        series = np.array([0.2, 0.4, 0.6, 0.8])
        preds_full = forecast_series(MarkovRegimeForecaster(), series)
        preds_prefix = forecast_series(MarkovRegimeForecaster(), series[:2])
        assert preds_full[:2] == preds_prefix

    def test_markov_beats_last_value_on_mgrast(self):
        """On the regime-switching MG-RAST pattern, the Markov forecaster
        should at least match naive persistence (it subsumes it)."""
        series = MGRastTraceGenerator(seed=4).read_ratio_series(4 * 24 * 3600)
        naive = forecast_series(LastValueForecaster(), series)
        markov = forecast_series(MarkovRegimeForecaster(n_bins=5), series)
        mae_naive = float(np.mean(np.abs(np.array(naive) - series)))
        mae_markov = float(np.mean(np.abs(np.array(markov) - series)))
        assert mae_markov < mae_naive * 1.15
