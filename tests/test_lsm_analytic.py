import numpy as np
import pytest

from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.lsm.analytic import AnalyticLSMModel, _soft_min


MB = 1024 * 1024


def make_model(seed=1, noise=0.0, bias=0.0, **knob_overrides):
    # Production-scale knobs: the analytic model is meant for the real
    # hardware spec, unlike the per-op engine tests.
    from repro.config import cassandra_space
    from repro.lsm.knobs import EngineKnobs

    cfg = cassandra_space().configuration(**knob_overrides)
    return AnalyticLSMModel(
        EngineKnobs.from_configuration(cfg),
        seed=seed,
        noise_sigma=noise,
        run_bias_sigma=bias,
    )


class TestSoftMin:
    def test_single_value(self):
        assert _soft_min([5.0]) == pytest.approx(5.0)

    def test_close_to_min(self):
        assert _soft_min([100.0, 1e9]) == pytest.approx(100.0, rel=0.01)

    def test_below_hard_min_when_caps_close(self):
        assert _soft_min([100.0, 100.0]) < 100.0

    def test_ignores_infinity(self):
        assert np.isfinite(_soft_min([50.0, float("inf")]))

    def test_all_infinite(self):
        assert _soft_min([float("inf")]) == float("inf")


class TestStepping:
    def test_step_advances_time(self):
        m = make_model()
        m.step(0.5, dt=2.0)
        assert m.t == pytest.approx(2.0)

    def test_step_rejects_bad_inputs(self):
        m = make_model()
        with pytest.raises(ValueError):
            m.step(0.5, dt=0.0)
        with pytest.raises(ValueError):
            m.step(1.5)

    def test_throughput_positive(self):
        m = make_model()
        assert m.step(0.5).throughput > 0

    def test_run_returns_requested_steps(self):
        m = make_model()
        assert len(m.run(0.5, duration=30, dt=1.0)) == 30

    def test_writes_fill_memtable_and_flush(self):
        m = make_model()
        m.run(0.0, duration=120)
        assert m.total_flushes >= 1
        assert m.sstable_count >= 1

    def test_pure_reads_no_flushes(self):
        m = make_model()
        m.run(1.0, duration=60)
        assert m.total_flushes == 0

    def test_dataset_grows_with_inserts_only(self):
        m = make_model()
        before = m.dataset_bytes
        m.run(0.0, duration=30)
        grown = m.dataset_bytes
        assert grown > before
        # Updates don't grow the dataset.
        m.profile.update_fraction = 1.0
        m.run(0.0, duration=30)
        assert m.dataset_bytes == pytest.approx(grown)

    def test_apply_external_load(self):
        m = make_model()
        m.apply_external_load(reads=1000, writes=50_000, dt=1.0)
        assert m.total_ops == 51_000
        with pytest.raises(ValueError):
            m.apply_external_load(reads=-1, writes=0, dt=1.0)

    def test_load_reaches_target(self):
        m = make_model()
        m.load(1_000_000)
        assert m.dataset_bytes >= 1_000_000 * m.profile.record_bytes * 0.99


class TestThroughputShape:
    """The qualitative relationships the paper's tuning exploits."""

    def test_default_write_heavy_beats_read_heavy(self):
        m = make_model()
        m.load(5_000_000)
        m.settle()
        m.cache_age = 1000.0
        assert m.sustainable_throughput(0.0) > m.sustainable_throughput(1.0)

    def test_more_tables_slower_reads(self):
        a = make_model()
        a.load(5_000_000)
        a.st_tables = [100 * MB] * 3
        b = make_model()
        b.load(5_000_000)
        b.st_tables = [100 * MB] * 30
        a.cache_age = b.cache_age = 1000.0
        assert a.sustainable_throughput(1.0) > b.sustainable_throughput(1.0)

    def test_bigger_cache_faster_reads(self):
        small = make_model(file_cache_size_in_mb=32)
        big = make_model(file_cache_size_in_mb=2048)
        for m in (small, big):
            m.load(5_000_000)
            m.settle()
            m.cache_age = 1000.0
        assert big.sustainable_throughput(1.0) > small.sustainable_throughput(1.0)

    def test_leveled_beats_size_tiered_on_reads(self):
        st_model = make_model(compaction_method=SIZE_TIERED)
        lv_model = make_model(compaction_method=LEVELED)
        for m in (st_model, lv_model):
            m.load(5_000_000)
            m.settle(max_seconds=2000)
            m.cache_age = 1000.0
        assert lv_model.sustainable_throughput(0.95) > st_model.sustainable_throughput(0.95)

    def test_size_tiered_beats_leveled_on_writes(self):
        st_tp = np.mean([r.throughput for r in _loaded(SIZE_TIERED).run(0.05, 120)])
        lv_tp = np.mean([r.throughput for r in _loaded(LEVELED).run(0.05, 120)])
        assert st_tp > lv_tp

    def test_compaction_backlog_throttles(self):
        starved = make_model(compaction_throughput_mb_per_sec=8, concurrent_compactors=1)
        healthy = make_model(compaction_throughput_mb_per_sec=32, concurrent_compactors=4)
        for m in (starved, healthy):
            m.load(5_000_000)
            m.run(0.5, duration=120)
        assert starved.sstable_count >= healthy.sstable_count


class TestLatencies:
    def test_pure_reads_have_no_write_latency(self):
        m = make_model()
        m.load(1_000_000)
        step = m.step(1.0)
        assert step.write_latency_s == 0.0
        assert step.read_latency_s > 0.0

    def test_latency_at_least_service_time(self):
        m = make_model()
        m.load(1_000_000)
        step = m.step(0.5)
        assert step.read_latency_s >= m.costs.read_thread_hold
        assert step.write_latency_s >= m.costs.write_thread_hold

    def test_slower_reads_higher_latency(self):
        """A starved cache raises read latency along with lowering
        throughput (Little's law, fixed pool)."""
        fast = make_model(file_cache_size_in_mb=2048)
        slow = make_model(file_cache_size_in_mb=32)
        for m in (fast, slow):
            m.load(5_000_000)
            m.settle()
            m.cache_age = 1000.0
        assert slow.step(1.0).read_latency_s > fast.step(1.0).read_latency_s


class TestReconfigure:
    def test_switch_to_leveled_restructures(self):
        m = make_model()
        m.load(3_000_000)
        from repro.lsm.knobs import EngineKnobs
        from repro.config import cassandra_space

        cfg = cassandra_space().configuration(compaction_method=LEVELED)
        m.reconfigure(EngineKnobs.from_configuration(cfg))
        assert m.is_leveled
        assert sum(m.level_bytes[1:]) > 0
        assert m.st_tables == []

    def test_switch_back_to_size_tiered(self):
        m = make_model(compaction_method=LEVELED)
        m.load(3_000_000)
        from repro.lsm.knobs import EngineKnobs
        from repro.config import cassandra_space

        cfg = cassandra_space().configuration(compaction_method=SIZE_TIERED)
        m.reconfigure(EngineKnobs.from_configuration(cfg))
        assert not m.is_leveled
        assert sum(m.level_bytes[1:]) == 0
        assert sum(m.st_tables) > 0

    def test_cache_resize_loses_some_warmth(self):
        m = make_model()
        m.cache_age = 1000.0
        from repro.lsm.knobs import EngineKnobs
        from repro.config import cassandra_space

        cfg = cassandra_space().configuration(file_cache_size_in_mb=1024)
        m.reconfigure(EngineKnobs.from_configuration(cfg))
        assert m.cache_age < 1000.0


class TestDeterminismAndNoise:
    def test_zero_noise_deterministic(self):
        a = make_model(seed=5)
        b = make_model(seed=5)
        for m in (a, b):
            m.load(1_000_000)
        ra = [r.throughput for r in a.run(0.5, 30)]
        rb = [r.throughput for r in b.run(0.5, 30)]
        assert ra == rb

    def test_run_bias_applied_once(self):
        m = make_model(bias=0.05, seed=3)
        assert m.run_bias != 1.0
        assert 0.85 <= m.run_bias <= 1.15

    def test_noise_changes_steps(self):
        m = make_model(noise=0.05, seed=3)
        m.load(1_000_000)
        tps = [r.throughput for r in m.run(0.5, 20)]
        assert len(set(round(t) for t in tps)) > 1


def _loaded(method):
    m = make_model(compaction_method=method)
    m.load(5_000_000)
    m.settle()
    m.cache_age = 1000.0
    return m
