import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lsm.bloom import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [f"key{i}" for i in range(500)]
        bf = BloomFilter.from_keys(keys, fp_chance=0.01)
        assert all(k in bf for k in keys)

    def test_false_positive_rate_close_to_target(self):
        keys = [f"key{i}" for i in range(2000)]
        bf = BloomFilter.from_keys(keys, fp_chance=0.01)
        probes = [f"other{i}" for i in range(5000)]
        fp = sum(1 for p in probes if p in bf) / len(probes)
        assert fp < 0.03  # target 0.01, allow slack

    def test_higher_fp_chance_smaller_filter(self):
        keys = [f"key{i}" for i in range(1000)]
        tight = BloomFilter.from_keys(keys, fp_chance=0.001)
        loose = BloomFilter.from_keys(keys, fp_chance=0.1)
        assert loose.size_bytes < tight.size_bytes

    def test_empty_filter_rejects_everything(self):
        bf = BloomFilter(expected_items=10, fp_chance=0.01)
        assert "anything" not in bf

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=0, fp_chance=0.01)
        with pytest.raises(ValueError):
            BloomFilter(expected_items=10, fp_chance=0.0)
        with pytest.raises(ValueError):
            BloomFilter(expected_items=10, fp_chance=1.0)

    def test_expected_fp_rate_reported(self):
        keys = [f"k{i}" for i in range(100)]
        bf = BloomFilter.from_keys(keys, fp_chance=0.01)
        assert 0.0 < bf.expected_fp_rate < 0.05

    def test_expected_fp_rate_empty(self):
        assert BloomFilter(expected_items=5, fp_chance=0.01).expected_fp_rate == 0.0

    @given(st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_membership_property(self, keys):
        """Property: a bloom filter never lies about absence."""
        bf = BloomFilter.from_keys(keys, fp_chance=0.05)
        assert all(bf.might_contain(k) for k in keys)
