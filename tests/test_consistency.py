"""Cross-path consistency: the per-operation engine and the batched
analytic model share one cost model, so they must agree on *ordering*
and qualitative trends across configurations, even though their absolute
numbers differ (different scales, real vs expected cache behaviour).
"""

import numpy as np
import pytest

from repro.bench.ycsb import YCSBBenchmark
from repro.config.cassandra import LEVELED
from repro.datastore import CassandraLike
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


def engine_throughput(cassandra, config, rr, seed=7):
    wl = WorkloadSpec(
        read_ratio=rr, n_keys=4_000, krd_mean_ops=500.0, value_bytes=120
    )
    bench = YCSBBenchmark(cassandra)
    return bench.run_engine(config, wl, n_ops=4_000, load_keys=2_000, seed=seed).mean_throughput


def analytic_throughput(cassandra, config, rr, seed=7):
    wl = WorkloadSpec(read_ratio=rr, n_keys=2_000_000)
    bench = YCSBBenchmark(cassandra, run_seconds=120)
    return bench.run(config, wl, seed=seed).mean_throughput


class TestPathConsistency:
    def test_both_prefer_writes_with_default_config(self, cassandra):
        cfg = cassandra.default_configuration()
        assert engine_throughput(cassandra, cfg, 0.1) > engine_throughput(cassandra, cfg, 0.95)
        assert analytic_throughput(cassandra, cfg, 0.1) > analytic_throughput(cassandra, cfg, 0.95)

    def test_both_see_thread_starvation(self, cassandra):
        starved = cassandra.space.configuration(concurrent_writes=16)
        healthy = cassandra.space.configuration(concurrent_writes=32)
        assert engine_throughput(cassandra, starved, 0.0) < engine_throughput(
            cassandra, healthy, 0.0
        )
        assert analytic_throughput(cassandra, starved, 0.0) < analytic_throughput(
            cassandra, healthy, 0.0
        )

    def test_same_magnitude_on_writes(self, cassandra):
        """Write paths share per-op costs: absolute rates should agree
        within a small factor (reads differ more: real LRU vs expectation)."""
        cfg = cassandra.default_configuration()
        e = engine_throughput(cassandra, cfg, 0.0)
        a = analytic_throughput(cassandra, cfg, 0.0)
        assert 0.3 < e / a < 3.0

    def test_rank_correlation_across_configs(self, cassandra):
        """Spot-check several configs at a mixed workload: the two paths
        should mostly agree on which configs are better."""
        configs = [
            cassandra.default_configuration(),
            cassandra.space.configuration(concurrent_writes=16),
            cassandra.space.configuration(compaction_method=LEVELED),
            cassandra.space.configuration(memtable_cleanup_threshold=0.5),
        ]
        e = [engine_throughput(cassandra, c, 0.3) for c in configs]
        a = [analytic_throughput(cassandra, c, 0.3) for c in configs]
        # Spearman by hand: correlation of rank vectors.
        def ranks(v):
            order = np.argsort(v)
            r = np.empty(len(v))
            r[order] = np.arange(len(v))
            return r

        rho = np.corrcoef(ranks(e), ranks(a))[0, 1]
        assert rho > 0.3
