import numpy as np
import pytest

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.search import (
    SAMPLE_WALL_SECONDS,
    ConfigurationOptimizer,
    ExhaustiveSearch,
    GreedySearch,
    RandomSearch,
)
from repro.core.surrogate import SurrogateModel
from repro.datastore import CassandraLike
from repro.errors import SearchError
from repro.ml.ensemble import EnsembleConfig
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)


@pytest.fixture(scope="module")
def surrogate():
    """Surrogate trained on a synthetic surface with a known optimum:
    bigger cache always helps, optimum CW in the middle."""
    space = cassandra_space()
    rng = np.random.default_rng(0)
    samples = []
    for _ in range(25):
        config = space.sample_configuration(rng, PARAMS)
        vec = config.to_vector(PARAMS)  # unit scale
        for rr in np.linspace(0, 1, 5):
            cw_term = -((vec[1] - 0.5) ** 2)  # peak at mid CW
            target = 60_000 + 30_000 * vec[2] + 20_000 * cw_term + 5_000 * rr
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=float(rr)),
                    configuration=config,
                    throughput=float(target),
                )
            )
    dataset = PerformanceDataset(samples, PARAMS)
    model = SurrogateModel(space, PARAMS, EnsembleConfig(n_networks=4, max_epochs=60))
    return model.fit(dataset, seed=2)


class TestConfigurationOptimizer:
    def test_finds_known_optimum_direction(self, surrogate):
        opt = ConfigurationOptimizer(surrogate)
        result = opt.optimize(0.5, seed=0)
        # Big cache is always good on this surface.
        assert result.configuration["file_cache_size_in_mb"] > 1500

    def test_reports_costs(self, surrogate):
        result = ConfigurationOptimizer(surrogate).optimize(0.5, seed=0)
        assert result.evaluations > 100
        assert result.equivalent_wall_seconds < 1.0
        assert result.strategy == "rafiki-ga"

    def test_rejects_bad_rr(self, surrogate):
        with pytest.raises(SearchError):
            ConfigurationOptimizer(surrogate).optimize(1.5)

    def test_parameter_mismatch_rejected(self, surrogate):
        with pytest.raises(SearchError):
            ConfigurationOptimizer(surrogate, parameters=PARAMS[:2])

    def test_seed_configs_accepted(self, surrogate):
        space = surrogate.space
        seeds = [space.default_configuration()]
        result = ConfigurationOptimizer(surrogate).optimize(0.5, seed=1, seed_configs=seeds)
        assert result.predicted_throughput > 0


class TestGreedySearch:
    def test_improves_over_default(self, surrogate):
        result = GreedySearch(surrogate).optimize(0.5)
        default_pred = surrogate.predict(0.5, surrogate.space.default_configuration())
        assert result.predicted_throughput >= default_pred

    def test_cheaper_than_ga(self, surrogate):
        greedy = GreedySearch(surrogate).optimize(0.5)
        ga = ConfigurationOptimizer(surrogate).optimize(0.5, seed=0)
        assert greedy.evaluations < ga.evaluations

    def test_ga_close_to_greedy_on_separable_surface(self, surrogate):
        """On a *separable* surface greedy is optimal; the GA must come
        close (its advantage — Figure 6 — is on interdependent surfaces,
        exercised in benchmarks/test_ablation_search.py)."""
        greedy = GreedySearch(surrogate).optimize(0.5)
        ga = ConfigurationOptimizer(surrogate).optimize(0.5, seed=0)
        assert ga.predicted_throughput >= greedy.predicted_throughput * 0.93


class TestRandomSearch:
    def test_budget_respected(self, surrogate):
        result = RandomSearch(surrogate, budget=200).optimize(0.5, seed=0)
        assert result.evaluations == 200

    def test_finds_something_reasonable(self, surrogate):
        result = RandomSearch(surrogate, budget=500).optimize(0.5, seed=0)
        default_pred = surrogate.predict(0.5, surrogate.space.default_configuration())
        assert result.predicted_throughput >= default_pred

    def test_invalid_budget(self, surrogate):
        with pytest.raises(SearchError):
            RandomSearch(surrogate, budget=0)


class TestExhaustiveSearch:
    @pytest.fixture(scope="class")
    def cassandra(self):
        return CassandraLike()

    def test_grid_thinned_to_max(self, cassandra):
        search = ExhaustiveSearch(cassandra, PARAMS, resolution=3, max_configs=80)
        assert len(search.grid_configurations()) <= 80

    def test_optimize_beats_default(self, cassandra):
        wl = WorkloadSpec(read_ratio=0.9, n_keys=1_000_000)
        bench = YCSBBenchmark(cassandra, run_seconds=20)
        search = ExhaustiveSearch(
            cassandra, ["compaction_method", "file_cache_size_in_mb"],
            resolution=3, benchmark=bench, max_configs=6,
        )
        result = search.optimize(wl, seed=0)
        default_tp = bench.run(cassandra.default_configuration(), wl, seed=123).mean_throughput
        assert result.predicted_throughput >= default_tp * 0.95

    def test_wall_cost_accounting(self, cassandra):
        wl = WorkloadSpec(read_ratio=0.5, n_keys=1_000_000)
        bench = YCSBBenchmark(cassandra, run_seconds=10)
        search = ExhaustiveSearch(
            cassandra, ["compaction_method"], resolution=2, benchmark=bench
        )
        result = search.optimize(wl, seed=0)
        assert result.equivalent_wall_seconds == result.evaluations * SAMPLE_WALL_SECONDS

    def test_resolution_validated(self, cassandra):
        with pytest.raises(SearchError):
            ExhaustiveSearch(cassandra, PARAMS, resolution=1)
