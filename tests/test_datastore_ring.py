import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datastore import CassandraLike
from repro.datastore.ring import EngineCluster, HashRing
from repro.errors import DatastoreError


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


def small_config(cassandra):
    return cassandra.space.configuration(
        memtable_heap_space_in_mb=256,
        memtable_offheap_space_in_mb=256,
        memtable_cleanup_threshold=0.1,
    )


def make_cluster(cassandra, n_nodes=3, rf=3, cl="QUORUM", **kw):
    return EngineCluster(
        cassandra,
        small_config(cassandra),
        n_nodes=n_nodes,
        replication_factor=rf,
        consistency_level=cl,
        **kw,
    )


class TestHashRing:
    def test_replicas_are_distinct(self):
        ring = HashRing(["a", "b", "c", "d"])
        replicas = ring.replicas_for("somekey", 3)
        assert len(set(replicas)) == 3

    def test_deterministic_placement(self):
        a = HashRing(["a", "b", "c"]).replicas_for("k1", 2)
        b = HashRing(["a", "b", "c"]).replicas_for("k1", 2)
        assert a == b

    def test_too_many_replicas_rejected(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(DatastoreError):
            ring.replicas_for("k", 3)

    def test_balanced_ownership(self):
        ring = HashRing([f"n{i}" for i in range(4)], vnodes=128)
        counts = {f"n{i}": 0 for i in range(4)}
        for i in range(4000):
            counts[ring.replicas_for(f"key{i}", 1)[0]] += 1
        # Each node owns roughly a quarter (generous tolerance).
        assert all(500 < c < 2000 for c in counts.values())

    def test_remove_node_moves_few_keys(self):
        """The consistent-hashing property: removing one of four nodes
        re-homes only ~its share of keys."""
        keys = [f"key{i}" for i in range(2000)]
        ring = HashRing(["a", "b", "c", "d"], vnodes=128)
        before = {k: ring.replicas_for(k, 1)[0] for k in keys}
        ring.remove_node("d")
        moved = sum(
            1
            for k in keys
            if before[k] != ring.replicas_for(k, 1)[0] and before[k] != "d"
        )
        assert moved == 0  # only keys owned by 'd' move

    def test_remove_unknown_node(self):
        with pytest.raises(DatastoreError):
            HashRing(["a"]).remove_node("z")

    def test_validation(self):
        with pytest.raises(DatastoreError):
            HashRing([])
        with pytest.raises(DatastoreError):
            HashRing(["a", "a"])
        with pytest.raises(DatastoreError):
            HashRing(["a"], vnodes=0)


class TestEngineClusterBasics:
    def test_put_get(self, cassandra):
        cluster = make_cluster(cassandra)
        cluster.put("k1", b"v1")
        assert cluster.get("k1") == b"v1"

    def test_get_missing(self, cassandra):
        assert make_cluster(cassandra).get("ghost") is None

    def test_delete(self, cassandra):
        cluster = make_cluster(cassandra)
        cluster.put("k1", b"v1")
        cluster.delete("k1")
        assert cluster.get("k1") is None

    def test_overwrite_last_write_wins(self, cassandra):
        cluster = make_cluster(cassandra)
        cluster.put("k1", b"old")
        cluster.put("k1", b"new")
        assert cluster.get("k1") == b"new"

    def test_data_replicated_to_rf_nodes(self, cassandra):
        cluster = make_cluster(cassandra, n_nodes=5, rf=3)
        cluster.put("k1", b"v1")
        holders = sum(
            1 for engine in cluster.nodes.values() if engine.get("k1") == b"v1"
        )
        assert holders == 3

    def test_validation(self, cassandra):
        with pytest.raises(DatastoreError):
            make_cluster(cassandra, n_nodes=2, rf=3)
        with pytest.raises(DatastoreError):
            make_cluster(cassandra, cl="MAYBE")


class TestFailuresAndConsistency:
    def test_quorum_survives_one_failure(self, cassandra):
        cluster = make_cluster(cassandra, n_nodes=3, rf=3, cl="QUORUM")
        cluster.put("k1", b"v1")
        cluster.fail_node("node0")
        assert cluster.get("k1") == b"v1"
        cluster.put("k2", b"v2")
        assert cluster.get("k2") == b"v2"

    def test_all_requires_every_replica(self, cassandra):
        cluster = make_cluster(cassandra, n_nodes=3, rf=3, cl="ALL")
        cluster.fail_node("node1")
        with pytest.raises(DatastoreError):
            cluster.put("k", b"v")

    def test_read_your_writes_with_quorum_after_recovery(self, cassandra):
        """R + W > RF: a quorum read intersects the quorum write."""
        cluster = make_cluster(cassandra, n_nodes=3, rf=3, cl="QUORUM")
        cluster.fail_node("node2")
        cluster.put("k", b"while-down")
        cluster.recover_node("node2")
        # Whatever replicas the read consults, at least one saw the write.
        assert cluster.get("k") == b"while-down"

    def test_stale_replica_repaired_on_read(self, cassandra):
        cluster = make_cluster(cassandra, n_nodes=3, rf=3, cl="QUORUM", read_repair=True)
        cluster.fail_node("node0")
        cluster.put("k", b"v2")
        cluster.recover_node("node0")
        # Reads repair node0 eventually; force it by reading until the
        # stale node holds the value.
        for _ in range(5):
            cluster.get("k")
        holders = sum(
            1 for engine in cluster.nodes.values() if engine.get("k") == b"v2"
        )
        assert holders == 3

    def test_cannot_fail_all_nodes(self, cassandra):
        cluster = make_cluster(cassandra, n_nodes=2, rf=1, cl="ONE")
        cluster.fail_node("node0")
        with pytest.raises(DatastoreError):
            cluster.fail_node("node1")

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get"]),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_quorum_cluster_linearizable_without_failures(self, cassandra, ops):
        """With no failures, the replicated store behaves like a dict."""
        cluster = make_cluster(cassandra, n_nodes=3, rf=3, cl="QUORUM")
        model = {}
        for kind, ki in ops:
            key = f"k{ki}"
            if kind == "put":
                value = f"v{ki}".encode()
                cluster.put(key, value)
                model[key] = value
            elif kind == "delete":
                cluster.delete(key)
                model.pop(key, None)
            else:
                assert cluster.get(key) == model.get(key)
