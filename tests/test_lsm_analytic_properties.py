"""Property-based tests on the analytic model's invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import cassandra_space
from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.lsm.analytic import AnalyticLSMModel
from repro.lsm.knobs import EngineKnobs

SPACE = cassandra_space()

config_overrides = st.fixed_dictionaries(
    {
        "compaction_method": st.sampled_from([SIZE_TIERED, LEVELED]),
        "concurrent_writes": st.integers(min_value=16, max_value=96),
        "file_cache_size_in_mb": st.integers(min_value=32, max_value=2048),
        "memtable_cleanup_threshold": st.floats(min_value=0.1, max_value=0.5),
        "concurrent_compactors": st.integers(min_value=1, max_value=8),
    }
)


def make_model(overrides, seed=0):
    cfg = SPACE.configuration(**overrides)
    return AnalyticLSMModel(
        EngineKnobs.from_configuration(cfg),
        seed=seed,
        noise_sigma=0.0,
        run_bias_sigma=0.0,
    )


class TestAnalyticInvariants:
    @given(overrides=config_overrides, rr=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_throughput_positive_and_bounded(self, overrides, rr):
        model = make_model(overrides)
        model.load(1_000_000)
        x = model.sustainable_throughput(rr)
        assert 1.0 <= x < 1e7

    @given(overrides=config_overrides)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_structure_counts_never_negative(self, overrides):
        model = make_model(overrides)
        model.load(2_000_000)
        for rr in (0.0, 0.5, 1.0):
            model.run(rr, duration=30)
            assert model.memtable_bytes >= 0
            assert model.sstable_count >= 0
            assert all(s >= 0 for s in model.st_tables)
            assert all(b >= -1e-6 for b in model.level_bytes)
            assert model.compaction_backlog_bytes >= 0

    @given(overrides=config_overrides)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_settle_drains_backlog(self, overrides):
        model = make_model(overrides)
        model.load(2_000_000)
        model.run(0.0, duration=60)
        model.settle(max_seconds=50_000)
        assert model.compaction_backlog_bytes == 0.0

    @given(overrides=config_overrides, seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_strategy_switch_conserves_bytes(self, overrides, seed):
        model = make_model(overrides, seed=seed)
        model.load(2_000_000)
        model.settle(max_seconds=50_000)
        before = sum(model.st_tables) + sum(model.level_bytes) + sum(model.l0_tables)
        other = LEVELED if not model.is_leveled else SIZE_TIERED
        cfg = SPACE.configuration(**{**overrides, "compaction_method": other})
        model.reconfigure(EngineKnobs.from_configuration(cfg))
        after = sum(model.st_tables) + sum(model.level_bytes) + sum(model.l0_tables)
        assert after == pytest.approx(before, rel=1e-6)

    @given(overrides=config_overrides)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cache_hit_is_probability(self, overrides):
        model = make_model(overrides)
        model.load(1_000_000)
        model.run(0.5, duration=100)
        assert 0.0 <= model.cache_hit_ratio() <= 1.0

    @given(
        overrides=config_overrides,
        writes=st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_flush_accounting(self, overrides, writes):
        """Bytes written land in the memtable or flushed tables exactly."""
        model = make_model(overrides)
        model._apply_writes(writes, all_inserts=True)
        stored = (
            model.memtable_bytes
            + sum(model.st_tables)
            + sum(model.l0_tables)
            + sum(model.level_bytes)
        )
        assert stored == pytest.approx(writes * model.profile.record_bytes, rel=1e-9)
