"""The import DAG holds, and the checker actually catches violations."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_layering.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRepoLayering:
    def test_no_upward_imports(self):
        checker = load_checker()
        assert checker.check(REPO / "src") == []

    def test_script_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, str(SCRIPT)], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "layering OK" in proc.stdout


class TestCheckerCatchesViolations:
    def _fake_tree(self, tmp_path, sim_body):
        src = tmp_path / "src"
        (src / "repro" / "sim").mkdir(parents=True)
        (src / "repro" / "cli.py").write_text("import repro.sim\n")
        (src / "repro" / "__init__.py").write_text("")
        (src / "repro" / "sim" / "__init__.py").write_text(sim_body)
        return src

    def test_upward_module_level_import_flagged(self, tmp_path):
        checker = load_checker()
        src = self._fake_tree(tmp_path, "from repro.cli import main\n")
        violations = checker.check(src)
        assert len(violations) == 1
        assert "repro.sim -> repro.cli" in violations[0].replace("(rank 0) ", "")

    def test_lazy_function_level_import_is_sanctioned(self, tmp_path):
        checker = load_checker()
        src = self._fake_tree(
            tmp_path,
            "def shim():\n    from repro.cli import main\n    return main\n",
        )
        assert checker.check(src) == []

    def test_unknown_subpackage_is_an_error_not_a_pass(self, tmp_path):
        checker = load_checker()
        src = self._fake_tree(tmp_path, "")
        (src / "repro" / "newthing").mkdir()
        (src / "repro" / "newthing" / "__init__.py").write_text("")
        try:
            checker.check(src)
        except SystemExit as exc:
            assert "newthing" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("unknown subpackage should require a rank")
