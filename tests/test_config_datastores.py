import pytest

from repro.config import (
    CASSANDRA_KEY_PARAMETERS,
    SCYLLA_KEY_PARAMETERS,
    cassandra_space,
    scylla_space,
)
from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.config.scylla import SCYLLA_AUTOTUNED_PARAMETERS


class TestCassandraSpace:
    def test_has_25_parameters(self):
        assert len(cassandra_space()) == 25

    def test_key_parameters_present(self):
        space = cassandra_space()
        for name in CASSANDRA_KEY_PARAMETERS:
            assert name in space

    def test_five_key_parameters(self):
        assert len(CASSANDRA_KEY_PARAMETERS) == 5

    def test_default_compaction_is_size_tiered(self):
        assert cassandra_space().default_configuration()["compaction_method"] == SIZE_TIERED

    def test_compaction_choices(self):
        spec = cassandra_space()["compaction_method"]
        assert set(spec.choices) == {SIZE_TIERED, LEVELED}

    def test_vendor_defaults(self):
        cfg = cassandra_space().default_configuration()
        assert cfg["concurrent_writes"] == 32
        assert cfg["file_cache_size_in_mb"] == 512
        assert cfg["memtable_cleanup_threshold"] == pytest.approx(0.11)
        assert cfg["concurrent_compactors"] == 2

    def test_all_performance_related(self):
        # We model only the performance half of cassandra.yaml.
        assert all(p.performance_related for p in cassandra_space().parameters)

    def test_key_parameter_search_space_size(self):
        """§1: 'the search space conservatively has 25,000 points' for
        5 parameters x 10 workloads; our quantized space is comparable."""
        space = cassandra_space()
        card = space.cardinality(CASSANDRA_KEY_PARAMETERS, float_resolution=10)
        assert card > 2_000  # paper quotes 2,560 configurations (S3.5)

    def test_descriptions_everywhere(self):
        assert all(p.description for p in cassandra_space().parameters)


class TestScyllaSpace:
    def test_same_parameter_names_as_cassandra(self):
        assert set(scylla_space().names) == set(cassandra_space().names)

    def test_autotuned_are_real_parameters(self):
        space = scylla_space()
        for name in SCYLLA_AUTOTUNED_PARAMETERS:
            assert name in space

    def test_scylla_key_parameters_not_autotuned(self):
        """§4.10: strip ignored parameters before selecting the key set."""
        assert not (set(SCYLLA_KEY_PARAMETERS) & SCYLLA_AUTOTUNED_PARAMETERS)

    def test_five_scylla_key_parameters(self):
        assert len(SCYLLA_KEY_PARAMETERS) == 5
