import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.errors import SearchError
from repro.ga.encoding import ConfigurationEncoder


@pytest.fixture(scope="module")
def encoder():
    return ConfigurationEncoder(cassandra_space(), CASSANDRA_KEY_PARAMETERS)


class TestEncoder:
    def test_gene_count(self, encoder):
        assert encoder.n_genes == 5

    def test_needs_parameters(self):
        with pytest.raises(SearchError):
            ConfigurationEncoder(cassandra_space(), [])

    def test_bounds_match_specs(self, encoder):
        space = cassandra_space()
        cw_idx = list(encoder.names).index("concurrent_writes")
        assert encoder.lower[cw_idx] == space["concurrent_writes"].low
        assert encoder.upper[cw_idx] == space["concurrent_writes"].high

    def test_categorical_encoded_as_index(self, encoder):
        cm_idx = list(encoder.names).index("compaction_method")
        assert encoder.lower[cm_idx] == 0.0
        assert encoder.upper[cm_idx] == 1.0
        assert encoder.integral[cm_idx]

    def test_decode_valid_configuration(self, encoder, rng):
        genes = encoder.random_genes(rng)
        config = encoder.decode(genes)
        for name in encoder.names:
            encoder.space[name].validate(config[name])

    def test_decode_wrong_length(self, encoder):
        with pytest.raises(SearchError):
            encoder.decode(np.zeros(3))

    def test_encode_decode_round_trip(self, encoder, rng):
        config = encoder.space.sample_configuration(rng, encoder.names)
        back = encoder.decode(encoder.encode(config))
        for name in encoder.names:
            assert back[name] == config[name]

    def test_decode_clips_out_of_bounds(self, encoder):
        genes = encoder.upper + 100.0
        config = encoder.decode(genes)
        for name, hi in zip(encoder.names, encoder.upper):
            spec = encoder.space[name]
            spec.validate(config[name])

    def test_features_include_read_ratio(self, encoder, rng):
        genes = encoder.random_genes(rng)
        row = encoder.features(genes, read_ratio=0.7)
        assert row[0] == 0.7
        assert len(row) == 1 + encoder.n_genes
        assert (row[1:] >= 0).all() and (row[1:] <= 1).all()


class TestViolation:
    def test_feasible_point_zero(self, encoder):
        config = encoder.space.default_configuration()
        assert encoder.violation(encoder.encode(config)) == 0.0

    def test_fractional_integer_violates(self, encoder):
        genes = encoder.encode(encoder.space.default_configuration())
        cw_idx = list(encoder.names).index("concurrent_writes")
        genes[cw_idx] += 0.4
        assert encoder.violation(genes) == pytest.approx(0.4)

    def test_out_of_bounds_violates(self, encoder):
        genes = encoder.encode(encoder.space.default_configuration())
        genes[0] = encoder.upper[0] + (encoder.upper[0] - encoder.lower[0])
        assert encoder.violation(genes) >= 1.0

    def test_float_parameters_never_integral_violation(self, encoder):
        genes = encoder.encode(encoder.space.default_configuration())
        mt_idx = list(encoder.names).index("memtable_cleanup_threshold")
        genes[mt_idx] = 0.237  # arbitrary in-range float
        assert encoder.violation(genes) == 0.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_decode_always_feasible(self, encoder, seed):
        rng = np.random.default_rng(seed)
        genes = rng.uniform(encoder.lower - 5, encoder.upper + 5)
        config = encoder.decode(genes)
        snapped = encoder.encode(config)
        assert encoder.violation(snapped) == 0.0
