import numpy as np
import pytest

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.surrogate import SurrogateModel
from repro.errors import TrainingError
from repro.ml.ensemble import EnsembleConfig
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)


@pytest.fixture(scope="module")
def space():
    return cassandra_space()


@pytest.fixture(scope="module")
def dataset(space):
    """A synthetic dataset with a known smooth response."""
    rng = np.random.default_rng(0)
    samples = []
    for _ in range(12):
        config = space.sample_configuration(rng, PARAMS)
        vec = config.to_vector(PARAMS)
        for rr in np.linspace(0, 1, 6):
            target = 50_000 + 40_000 * (1 - rr) * vec[1] + 20_000 * rr * vec[2]
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=float(rr)),
                    configuration=config,
                    throughput=float(target),
                )
            )
    return PerformanceDataset(samples, PARAMS)


@pytest.fixture(scope="module")
def fitted(space, dataset):
    model = SurrogateModel(space, PARAMS, EnsembleConfig(n_networks=4, max_epochs=80))
    return model.fit(dataset, seed=1)


class TestSurrogateModel:
    def test_needs_features(self, space):
        with pytest.raises(TrainingError):
            SurrogateModel(space, [])

    def test_feature_names(self, space):
        model = SurrogateModel(space, PARAMS)
        assert model.feature_names[0] == "read_ratio"

    def test_fit_rejects_mismatched_dataset(self, space, dataset):
        model = SurrogateModel(space, PARAMS[:2])
        with pytest.raises(TrainingError):
            model.fit(dataset)

    def test_predict_before_fit(self, space):
        model = SurrogateModel(space, PARAMS)
        with pytest.raises(TrainingError):
            model.predict(0.5, space.default_configuration())

    def test_learns_training_surface(self, fitted, dataset):
        preds = fitted.predict_dataset(dataset)
        err = np.abs(preds - dataset.targets()) / dataset.targets()
        assert err.mean() < 0.05

    def test_predict_scalar(self, fitted, space):
        out = fitted.predict(0.5, space.default_configuration())
        assert isinstance(out, float)
        assert out > 0

    def test_encode_matches_dataset_features(self, fitted, dataset):
        sample = dataset[0]
        row = fitted.encode(sample.workload.read_ratio, sample.configuration)
        assert np.allclose(row, dataset.features()[0])

    def test_query_stats_tracked(self, fitted, space):
        before = fitted.stats.n_queries
        fitted.predict(0.3, space.default_configuration())
        assert fitted.stats.n_queries == before + 1
        assert fitted.stats.seconds_per_query >= 0

    def test_fast_queries(self, fitted, space):
        """§4.8: the surrogate answers in ~tens of microseconds, enabling
        thousands of evaluations per second; allow generous slack for
        the Python implementation."""
        import time

        rows = np.tile(fitted.encode(0.5, space.default_configuration()), (1000, 1))
        t0 = time.perf_counter()
        fitted.predict_features(rows)
        per_query = (time.perf_counter() - t0) / 1000
        assert per_query < 2e-3
