import pytest

from repro.core.anova import (
    AnovaRanking,
    ParameterEffect,
    consolidate_memtable_parameters,
    rank_parameters,
    select_key_parameters,
)
from repro.datastore import CassandraLike
from repro.errors import SearchError
from repro.workload.spec import WorkloadSpec


def effect(name, std):
    return ParameterEffect(name=name, throughput_std=std)


class TestAnovaRanking:
    def test_sorted_descending(self):
        ranking = AnovaRanking([effect("a", 1.0), effect("b", 5.0), effect("c", 3.0)])
        assert ranking.names() == ["b", "c", "a"]

    def test_top(self):
        ranking = AnovaRanking([effect("a", 1.0), effect("b", 5.0)])
        assert [e.name for e in ranking.top(1)] == ["b"]

    def test_without(self):
        ranking = AnovaRanking([effect("a", 1.0), effect("b", 5.0)])
        assert ranking.without(["b"]).names() == ["a"]

    def test_indexing(self):
        ranking = AnovaRanking([effect("a", 1.0), effect("b", 5.0)])
        assert ranking[0].name == "b"
        assert len(ranking) == 2


class TestSelectKeyParameters:
    def test_knee_detected(self):
        ranking = AnovaRanking(
            [effect("a", 100), effect("b", 90), effect("c", 80), effect("d", 75),
             effect("e", 70), effect("f", 5), effect("g", 4)]
        )
        assert select_key_parameters(ranking) == ["a", "b", "c", "d", "e"]

    def test_no_knee_falls_back_to_max(self):
        ranking = AnovaRanking([effect(f"p{i}", 100 - i) for i in range(12)])
        assert len(select_key_parameters(ranking, max_k=6)) == 6

    def test_short_ranking_returned_whole(self):
        ranking = AnovaRanking([effect("a", 2.0), effect("b", 1.0)])
        assert select_key_parameters(ranking) == ["a", "b"]

    def test_min_k_respected(self):
        ranking = AnovaRanking(
            [effect("a", 100), effect("b", 1), effect("c", 0.9), effect("d", 0.8)]
        )
        selected = select_key_parameters(ranking, min_k=3)
        assert len(selected) >= 3


class TestConsolidation:
    def test_flush_family_replaced_by_threshold(self):
        """§4.5: skip the memtable-space params, keep cleanup threshold."""
        selected = [
            "compaction_method",
            "memtable_flush_writers",
            "memtable_offheap_space_in_mb",
            "concurrent_writes",
        ]
        out = consolidate_memtable_parameters(selected)
        assert "memtable_flush_writers" not in out
        assert "memtable_offheap_space_in_mb" not in out
        assert "memtable_cleanup_threshold" in out

    def test_threshold_not_duplicated(self):
        selected = ["memtable_cleanup_threshold", "memtable_flush_writers"]
        out = consolidate_memtable_parameters(selected)
        assert out.count("memtable_cleanup_threshold") == 1

    def test_no_family_no_change(self):
        selected = ["compaction_method", "concurrent_writes"]
        assert consolidate_memtable_parameters(selected) == selected


class TestRankParameters:
    @pytest.fixture(scope="class")
    def ranking(self):
        # Realistic dataset scale (a tiny dataset fits in cache and the
        # compaction/cache mechanisms go silent) and a read-leaning
        # representative workload, as MG-RAST is "read-heavy most of the
        # time" (§4.8).
        cassandra = CassandraLike()
        return rank_parameters(
            cassandra,
            WorkloadSpec(read_ratio=0.75, n_keys=30_000_000),
            repeats=2,
            seed=0,
        )

    def test_mechanism_parameters_beat_plumbing(self, ranking):
        """Figure 5's structure: compaction/cache/flush parameters carry
        far more variance than plumbing parameters, whose apparent std is
        just the ~2% run-to-run measurement noise."""
        stds = {e.name: e.throughput_std for e in ranking}
        top = max(stds["compaction_method"], stds["file_cache_size_in_mb"])
        assert top > 5 * stds["batch_size_warn_threshold_in_kb"]
        assert top > 5 * stds["dynamic_snitch_update_interval_in_ms"]

    def test_compaction_method_in_top(self, ranking):
        assert "compaction_method" in ranking.names()[:6]

    def test_significance_flags(self, ranking):
        by_name = {e.name: e for e in ranking}
        assert by_name["compaction_method"].significant
        assert not by_name["range_request_timeout_in_ms"].significant

    def test_all_parameters_ranked(self, ranking):
        assert len(ranking) == 25

    def test_effects_have_level_means(self, ranking):
        for e in ranking.top(3):
            assert len(e.level_means) == len(e.values) >= 2

    def test_repeats_validation(self):
        cassandra = CassandraLike()
        with pytest.raises(SearchError):
            rank_parameters(
                cassandra, WorkloadSpec(read_ratio=0.5), repeats=0
            )
