import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.decision_tree import DecisionTreeRegressor, ModelTreeRegressor
from repro.ml.metrics import rmse


def step_function(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 2))
    y = np.where(x[:, 0] > 0.5, 10.0, 0.0) + np.where(x[:, 1] > 0.3, 5.0, 0.0)
    return x, y


def linear_function(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 3))
    y = 2 * x[:, 0] + 3 * x[:, 1] - x[:, 2]
    return x, y


class TestDecisionTree:
    def test_fits_step_function(self):
        x, y = step_function()
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        assert rmse(y, tree.predict(x)) < 1.0

    def test_respects_max_depth(self):
        x, y = step_function()
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        x, y = step_function(n=20)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10).fit(x, y)
        assert tree.depth() <= 1

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(0).uniform(size=(30, 2))
        tree = DecisionTreeRegressor().fit(x, np.full(30, 7.0))
        assert tree.depth() == 0
        assert np.allclose(tree.predict(x), 7.0)

    def test_predict_before_fit(self):
        with pytest.raises(TrainingError):
            DecisionTreeRegressor().predict(np.ones((1, 2)))

    def test_single_row_predict(self):
        x, y = step_function()
        tree = DecisionTreeRegressor().fit(x, y)
        assert isinstance(tree.predict(x[0]), float)

    def test_bad_hyperparameters(self):
        with pytest.raises(TrainingError):
            DecisionTreeRegressor(max_depth=0)

    def test_bad_shapes(self):
        with pytest.raises(TrainingError):
            DecisionTreeRegressor().fit(np.ones((3, 2)), np.ones(4))


class TestModelTree:
    def test_beats_plain_tree_on_linear_target(self):
        """§3.7.2: linear-combination nodes improve on single-variable
        splits for smooth responses."""
        x, y = linear_function()
        plain = DecisionTreeRegressor(max_depth=3).fit(x, y)
        model = ModelTreeRegressor(max_depth=3).fit(x, y)
        x_test, y_test = linear_function(seed=1)
        assert rmse(y_test, model.predict(x_test)) < rmse(y_test, plain.predict(x_test))

    def test_linear_function_near_exact(self):
        x, y = linear_function()
        model = ModelTreeRegressor(max_depth=2).fit(x, y)
        assert rmse(y, model.predict(x)) < 0.05
