"""Decision-mode behaviour of the online controller."""

import pytest

from repro.core.controller import OnlineController
from repro.datastore import CassandraLike
from repro.errors import SearchError
from repro.workload.forecast import LastValueForecaster, MarkovRegimeForecaster
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=2_000_000)


class RecordingRafiki:
    """Records the RRs it was asked about; returns the default config."""

    def __init__(self, datastore):
        self.datastore = datastore
        self.asked = []

    def recommend(self, read_ratio, use_cache=True):
        from repro.core.search import OptimizationResult

        self.asked.append(round(read_ratio, 4))
        return OptimizationResult(
            configuration=self.datastore.default_configuration(),
            predicted_throughput=0.0,
            evaluations=1,
            equivalent_wall_seconds=0.0,
            strategy="recording",
        )


class TestDecisionModes:
    def test_invalid_mode_rejected(self, cassandra, workload):
        with pytest.raises(SearchError):
            OnlineController(cassandra, None, workload, decision_mode="psychic")

    def test_forecast_mode_needs_forecaster(self, cassandra, workload):
        with pytest.raises(SearchError):
            OnlineController(cassandra, None, workload, decision_mode="forecast")

    def test_oracle_sees_current_window(self, cassandra, workload):
        rafiki = RecordingRafiki(cassandra)
        ctrl = OnlineController(
            cassandra, rafiki, workload, window_seconds=30,
            rr_change_threshold=0.01, decision_mode="oracle",
        )
        ctrl.run([0.2, 0.8], load=False)
        assert rafiki.asked == [0.2, 0.8]

    def test_reactive_lags_one_window(self, cassandra, workload):
        rafiki = RecordingRafiki(cassandra)
        ctrl = OnlineController(
            cassandra, rafiki, workload, window_seconds=30,
            rr_change_threshold=0.01, decision_mode="reactive",
        )
        ctrl.run([0.2, 0.8, 0.8], load=False)
        # First window: no information yet -> no consult.  Then it uses
        # the previous window's RR.
        assert rafiki.asked == [0.2, 0.8]

    def test_forecast_consults_prediction(self, cassandra, workload):
        rafiki = RecordingRafiki(cassandra)
        forecaster = LastValueForecaster(initial=0.5)
        ctrl = OnlineController(
            cassandra, rafiki, workload, window_seconds=30,
            rr_change_threshold=0.01, decision_mode="forecast",
            forecaster=forecaster,
        )
        ctrl.run([0.2, 0.9, 0.4], load=False)
        # Window 0: the forecaster has seen nothing -> no consult (cold
        # start, like reactive mode's first window); window 1: last
        # value (0.2); window 2: last value (0.9).
        assert rafiki.asked == [0.2, 0.9]

    def test_forecast_cold_start_skips_first_window(self, cassandra, workload):
        """An unfitted forecaster's prior must not drive a reconfiguration."""
        rafiki = RecordingRafiki(cassandra)
        ctrl = OnlineController(
            cassandra, rafiki, workload, window_seconds=30,
            rr_change_threshold=0.01, decision_mode="forecast",
            forecaster=MarkovRegimeForecaster(),
        )
        run = ctrl.run([0.9], load=False)
        assert rafiki.asked == []
        assert not run.events[0].reconfigured

    def test_forecaster_updated_with_observations(self, cassandra, workload):
        forecaster = MarkovRegimeForecaster()
        ctrl = OnlineController(
            cassandra, None, workload, window_seconds=30,
            decision_mode="forecast", forecaster=forecaster,
        )
        ctrl.run([0.9, 0.9, 0.9], load=False)
        assert forecaster.predict() > 0.6

    def test_forecast_mode_skips_downtime(self, cassandra, workload):
        """Proactive reconfiguration at the boundary costs no window time."""

        class SwitchingRafiki(RecordingRafiki):
            def recommend(self, read_ratio, use_cache=True):
                result = super().recommend(read_ratio)
                if read_ratio > 0.5:
                    result.configuration = self.datastore.space.configuration(
                        file_cache_size_in_mb=1024
                    )
                return result

        def run_mode(mode, forecaster=None):
            ctrl = OnlineController(
                cassandra, SwitchingRafiki(cassandra), workload,
                window_seconds=30, rr_change_threshold=0.01,
                reconfiguration_penalty_s=15.0, decision_mode=mode,
                forecaster=forecaster, seed=3,
            )
            return ctrl.run([0.2, 0.9], load=False)

        reactive = run_mode("oracle")
        proactive = run_mode("forecast", LastValueForecaster(initial=0.2))
        # Note: both switch configurations; only the oracle/reactive one
        # pays the in-window penalty.
        assert proactive.events[-1].mean_throughput >= reactive.events[-1].mean_throughput
