"""Atomic, checksummed artifact writes (repro.recovery.atomic)."""

import json
import os

import pytest

from repro.errors import PersistenceError
from repro.recovery.atomic import (
    ARTIFACT_VERSION,
    read_artifact,
    verify_artifact,
    write_artifact,
    write_text_atomic,
)
from repro.runtime.events import EventBus

PAYLOAD = {"samples": [1, 2, 3], "feature_parameters": ["a", "b"]}


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        body = read_artifact(path, kind="dataset")
        assert body["samples"] == [1, 2, 3]
        assert body["artifact_kind"] == "dataset"
        assert body["format_version"] == ARTIFACT_VERSION
        assert "crc32" not in body

    def test_file_is_plain_json_with_envelope(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset", indent=2)
        blob = json.loads(path.read_text())
        assert blob["samples"] == [1, 2, 3]
        assert isinstance(blob["crc32"], int)

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        assert read_artifact(path)["samples"] == [1, 2, 3]

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        assert os.listdir(tmp_path) == ["x.json"]

    def test_payload_may_not_redefine_envelope_keys(self, tmp_path):
        with pytest.raises(PersistenceError):
            write_artifact(tmp_path / "x.json", {"crc32": 1}, kind="k")
        with pytest.raises(PersistenceError):
            write_artifact(tmp_path / "x.json", {"artifact_kind": "other"}, kind="k")

    def test_payload_format_version_must_agree(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, {"format_version": 1, "v": 2}, kind="k", version=1)
        assert read_artifact(path)["v"] == 2
        with pytest.raises(PersistenceError):
            write_artifact(path, {"format_version": 2}, kind="k", version=1)


class TestCorruptionDetection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="not found"):
            read_artifact(tmp_path / "nope.json")

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(PersistenceError, match="invalid JSON"):
            read_artifact(path, kind="dataset")

    def test_bit_flip_detected(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        path.write_text(path.read_text().replace("[1, 2, 3]", "[1, 2, 4]", 1))
        with pytest.raises(PersistenceError, match="checksum mismatch"):
            read_artifact(path, kind="dataset")

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        with pytest.raises(PersistenceError, match="kind"):
            read_artifact(path, kind="surrogate")

    def test_non_object_root_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError):
            read_artifact(path)

    def test_corruption_publishes_event(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        path.write_text(path.read_text().replace("1", "7", 1))
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="recovery.corrupt_artifact")
        with pytest.raises(PersistenceError):
            read_artifact(path, events=bus)
        assert len(seen) == 1
        assert seen[0].payload["path"] == str(path)


class TestLegacy:
    def test_legacy_plain_json_accepted_when_allowed(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(PAYLOAD))
        body = read_artifact(path, kind="dataset", allow_legacy=True)
        assert body["samples"] == [1, 2, 3]

    def test_legacy_rejected_by_default(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(PAYLOAD))
        with pytest.raises(PersistenceError, match="crc32"):
            read_artifact(path, kind="dataset")


class TestVerifyArtifact:
    def test_summary(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        summary = verify_artifact(path)
        assert summary["artifact_kind"] == "dataset"
        assert summary["format_version"] == ARTIFACT_VERSION
        assert summary["keys"] == ["feature_parameters", "samples"]

    def test_corrupt_raises(self, tmp_path):
        path = tmp_path / "x.json"
        write_artifact(path, PAYLOAD, kind="dataset")
        path.write_text(path.read_text()[:-4])
        with pytest.raises(PersistenceError):
            verify_artifact(path)


class TestWriteTextAtomic:
    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "f.txt"
        write_text_atomic(path, "one")
        write_text_atomic(path, "two")
        assert path.read_text() == "two"

    def test_failure_leaves_old_content(self, tmp_path):
        path = tmp_path / "f.txt"
        write_text_atomic(path, "old")
        with pytest.raises(TypeError):
            write_text_atomic(path, None)  # write fails before replace
        assert path.read_text() == "old"
        assert os.listdir(tmp_path) == ["f.txt"]
