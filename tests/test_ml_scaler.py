import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.scaler import StandardScaler


class TestStandardScaler:
    def test_transform_standardizes(self):
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(500, 2))
        s = StandardScaler().fit(x)
        z = s.transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_round_trip(self):
        x = np.random.default_rng(1).normal(size=(50, 3)) * 7 + 2
        s = StandardScaler().fit(x)
        assert np.allclose(s.inverse_transform(s.transform(x)), x)

    def test_1d_input(self):
        y = np.array([1.0, 2.0, 3.0])
        s = StandardScaler().fit(y)
        z = s.transform(y)
        assert z.shape == (3,)
        assert np.allclose(s.inverse_transform(z), y)

    def test_constant_column_passthrough(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        s = StandardScaler().fit(x)
        z = s.transform(x)
        assert np.allclose(z[:, 0], 0.0)
        assert np.isfinite(z).all()

    def test_fit_transform(self):
        x = np.arange(10.0)[:, None]
        assert np.allclose(StandardScaler().fit_transform(x), StandardScaler().fit(x).transform(x))

    def test_use_before_fit(self):
        with pytest.raises(TrainingError):
            StandardScaler().transform(np.ones(3))
        with pytest.raises(TrainingError):
            StandardScaler().inverse_transform(np.ones(3))

    def test_empty_fit_rejected(self):
        with pytest.raises(TrainingError):
            StandardScaler().fit(np.empty((0, 2)))

    def test_is_fitted(self):
        s = StandardScaler()
        assert not s.is_fitted
        s.fit(np.ones((3, 1)))
        assert s.is_fitted
