import pytest

from repro.sim.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_zero_advance_allowed(self):
        clock = SimClock(start=1.0)
        clock.advance(0.0)
        assert clock.now == 1.0

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(start=10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_repr_mentions_time(self):
        assert "0.5" in repr(SimClock(start=0.5))
