"""Sharded-vs-serial equivalence of the multi-tenant serve loop.

The scheduler's ``backend=`` fan-out must be *bit-identical* to the
legacy inline loop: same per-tenant results, same event log in
registration order, and — for a real :class:`~repro.core.rafiki.Rafiki`
— the same shared-cache statistics, LRU order, and named-seed-stream
counters, extending the PR 1 serial/parallel equivalence guarantee to
the serve path.
"""

import numpy as np
import pytest

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.policies import OraclePolicy, ReactivePolicy
from repro.core.rafiki import Rafiki
from repro.core.search import OptimizationResult
from repro.core.surrogate import SurrogateModel
from repro.datastore import CassandraLike
from repro.datastore.adapter import SimulatedDatastoreAdapter
from repro.errors import DatastoreError, MiddlewareError, SearchError
from repro.middleware import MiddlewareScheduler, TenantSpec
from repro.ml.ensemble import EnsembleConfig
from repro.runtime import EventBus
from repro.runtime.backend import ProcessPoolBackend, SerialBackend
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)
WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def tiny_surrogate():
    """A real (if crude) surrogate so recommend() runs a real search."""
    space = cassandra_space()
    rng = np.random.default_rng(5)
    samples = []
    for _ in range(6):
        config = space.sample_configuration(rng, PARAMS)
        vec = config.to_vector(PARAMS)
        for rr in (0.0, 0.5, 1.0):
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=rr),
                    configuration=config,
                    throughput=50_000 + 20_000 * vec[0] + 4_000 * rr,
                )
            )
    model = SurrogateModel(space, PARAMS, EnsembleConfig(n_networks=2, max_epochs=15))
    return model.fit(PerformanceDataset(samples, PARAMS), seed=2)


class CachingFakeRafiki:
    """Duck-typed recommender exercising the generic merge fallback."""

    def __init__(self, datastore):
        self.datastore = datastore
        self.misses = 0
        self.hits = 0
        self._cache = {}

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        result = OptimizationResult(
            configuration=self.datastore.default_configuration(),
            predicted_throughput=0.0,
            evaluations=1,
            equivalent_wall_seconds=0.0,
            strategy="fake",
        )
        self._cache[key] = result
        return result


def spec(tenant_id, series, seed=0, **kwargs):
    kwargs.setdefault("window_seconds", 30)
    kwargs.setdefault("load", False)
    return TenantSpec(
        tenant_id=tenant_id,
        rr_series=series,
        base_workload=WORKLOAD,
        seed=seed,
        **kwargs,
    )


def run_campaign(cassandra, specs, backend=None, rafiki=None):
    events = EventBus()
    log = []
    events.subscribe(log.append)
    rafiki = rafiki if rafiki is not None else CachingFakeRafiki(cassandra)
    scheduler = MiddlewareScheduler(cassandra, rafiki, events=events, backend=backend)
    for s in specs:
        scheduler.add_tenant(s)
    results = scheduler.run()
    summary = {
        tid: [
            (
                e.window_index,
                e.read_ratio,
                e.reconfigured,
                e.mean_throughput,
                e.rolled_back,
                e.degraded,
                str(e.configuration),
            )
            for e in r.events
        ]
        for tid, r in results.items()
    }
    # backend.state_* topics are exempt from the serial == sharded
    # contract (blob placement depends on OS worker scheduling); every
    # other event must match bitwise.
    log_view = [
        (e.topic, e.message, repr(sorted(e.payload.items())))
        for e in log
        if not e.topic.startswith("backend.state")
    ]
    return summary, log_view, rafiki


SPECS = lambda: [spec(f"t{i}", [0.2, 0.9, 0.4], seed=i) for i in range(4)]  # noqa: E731


class TestShardedEqualsSerial:
    @pytest.mark.parametrize(
        "backend_factory",
        [SerialBackend, lambda: ProcessPoolBackend(workers=2)],
        ids=["serial-backend", "process-pool"],
    )
    def test_results_and_events_bit_identical(self, cassandra, backend_factory):
        ref_summary, ref_log, ref_rafiki = run_campaign(cassandra, SPECS())
        summary, log, rafiki = run_campaign(
            cassandra, SPECS(), backend=backend_factory()
        )
        assert summary == ref_summary
        assert log == ref_log
        # The generic merge replays recommend() calls on the shared
        # fake, so its cache statistics evolve exactly as serial.
        assert (rafiki.hits, rafiki.misses) == (ref_rafiki.hits, ref_rafiki.misses)

    def test_workers_arg_resolves_to_sharded_path(self, cassandra):
        ref_summary, ref_log, _ = run_campaign(cassandra, SPECS())
        events = EventBus()
        log = []
        events.subscribe(log.append)
        scheduler = MiddlewareScheduler(
            cassandra, CachingFakeRafiki(cassandra), events=events, workers=2
        )
        assert scheduler.backend is not None
        for s in SPECS():
            scheduler.add_tenant(s)
        results = scheduler.run()
        assert {
            tid: [e.mean_throughput for e in r.events] for tid, r in results.items()
        } == {tid: [e[3] for e in evs] for tid, evs in ref_summary.items()}
        assert [
            (e.topic, e.message)
            for e in log
            if not e.topic.startswith("backend.state")
        ] == [(topic, message) for topic, message, _ in ref_log]

    def test_workers_one_keeps_legacy_serial_loop(self, cassandra):
        scheduler = MiddlewareScheduler(
            cassandra, CachingFakeRafiki(cassandra), workers=1
        )
        assert scheduler.backend is None

    def test_staggered_series_lengths(self, cassandra):
        """Tenants dropping out mid-campaign shard identically."""
        specs = [
            spec("long", [0.2, 0.8, 0.3, 0.6], seed=1),
            spec("short", [0.5], seed=2),
            spec("mid", [0.7, 0.1], seed=3),
        ]
        ref = run_campaign(cassandra, list(specs))[:2]
        sharded = run_campaign(
            cassandra, list(specs), backend=ProcessPoolBackend(workers=2)
        )[:2]
        assert sharded == ref


class TestRealRafikiProtocol:
    def test_cache_lru_and_seed_streams_identical(self, cassandra, tiny_surrogate):
        """The exact-merge path: shared cache stats, LRU order, and
        named seed-stream counters must match a serial run bitwise."""

        def campaign(backend):
            rafiki = Rafiki(
                cassandra, tiny_surrogate, PARAMS, seed=0, rr_cache_resolution=0.01
            )
            rafiki.optimizer.population_size = 8
            rafiki.optimizer.generations = 3
            # 0.62 repeats across tenants: worker-duplicated searches
            # must merge into ONE cache entry and ONE seed-stream burn.
            specs = [
                spec("a", [0.20, 0.62], seed=1, policy=OraclePolicy()),
                spec("b", [0.62, 0.80], seed=2, policy=OraclePolicy()),
                spec("c", [0.47, 0.62], seed=3, policy=OraclePolicy()),
            ]
            summary, log, rafiki = run_campaign(
                cassandra, specs, backend=backend, rafiki=rafiki
            )
            return (
                summary,
                log,
                (rafiki.cache.stats.hits, rafiki.cache.stats.misses),
                list(rafiki.cache._entries.keys()),
                dict(rafiki.seeds._counts),
            )

        serial = campaign(None)
        sharded = campaign(ProcessPoolBackend(workers=2))
        assert sharded == serial


class TestCacheEvictionCaveat:
    """A too-small shared cache must never silently break bit-identity."""

    def tiny_cache_rafiki(self, cassandra, tiny_surrogate):
        rafiki = Rafiki(
            cassandra,
            tiny_surrogate,
            PARAMS,
            seed=0,
            rr_cache_resolution=0.01,
            cache_capacity=1,
        )
        rafiki.optimizer.population_size = 8
        rafiki.optimizer.generations = 2
        return rafiki

    def test_risky_round_falls_back_to_serial(self, cassandra, tiny_surrogate):
        # Two oracle tenants racing distinct regimes into a 1-entry
        # cache: every round would evict mid-round, so every round must
        # run serially — announced, and bit-identical to a serial run.
        specs = lambda: [  # noqa: E731
            spec("a", [0.20, 0.60], seed=1, policy=OraclePolicy()),
            spec("b", [0.80, 0.40], seed=2, policy=OraclePolicy()),
        ]
        ref = run_campaign(
            cassandra, specs(), rafiki=self.tiny_cache_rafiki(cassandra, tiny_surrogate)
        )
        sharded = run_campaign(
            cassandra,
            specs(),
            backend=ProcessPoolBackend(workers=2),
            rafiki=self.tiny_cache_rafiki(cassandra, tiny_surrogate),
        )
        assert sharded[0] == ref[0]
        topics = [t for t, _, _ in sharded[1]]
        assert topics.count("scheduler.serial_fallback") == 2
        # Apart from the fallback announcements, the same event log.
        assert [
            r for r in sharded[1] if r[0] != "scheduler.serial_fallback"
        ] == ref[1]

    def test_unforeseen_eviction_is_an_error_not_a_divergence(
        self, cassandra, tiny_surrogate
    ):
        # A reactive policy searches the *previous* window's regime —
        # invisible to the pre-round estimate (which looks at current
        # regimes).  Window 2: the estimate sees 0.9 (cached, fits) but
        # the policy searches 0.5, evicting 0.9 mid-merge.  That must
        # raise, not silently return possibly-divergent results.
        run = lambda backend: run_campaign(  # noqa: E731
            cassandra,
            [spec("r", [0.9, 0.5, 0.9], seed=1, policy=ReactivePolicy())],
            backend=backend,
            rafiki=self.tiny_cache_rafiki(cassandra, tiny_surrogate),
        )
        run(None)  # serial handles the eviction fine
        with pytest.raises(MiddlewareError, match="evicted"):
            run(SerialBackend())

    def test_ample_cache_never_falls_back(self, cassandra, tiny_surrogate):
        rafiki = Rafiki(
            cassandra, tiny_surrogate, PARAMS, seed=0, rr_cache_resolution=0.01
        )
        rafiki.optimizer.population_size = 8
        rafiki.optimizer.generations = 2
        _, log, _ = run_campaign(
            cassandra,
            [
                spec("a", [0.20, 0.60], seed=1, policy=OraclePolicy()),
                spec("b", [0.80, 0.40], seed=2, policy=OraclePolicy()),
            ],
            backend=SerialBackend(),
            rafiki=rafiki,
        )
        assert all(t != "scheduler.serial_fallback" for t, _, _ in log)


class TestEngineExecutionTenants:
    ENGINE_WORKLOAD = WorkloadSpec(read_ratio=0.9, n_keys=2000, krd_mean_ops=300)

    def engine_spec(self, **kwargs):
        return TenantSpec(
            tenant_id="eng",
            rr_series=[0.9, 0.5],
            base_workload=self.ENGINE_WORKLOAD,
            seed=1,
            window_seconds=5,
            load=True,
            execution="engine",
            **kwargs,
        )

    def test_engine_tenant_serial_matches_sharded(self, cassandra):
        def campaign(backend):
            scheduler = MiddlewareScheduler(
                cassandra, CachingFakeRafiki(cassandra), backend=backend
            )
            scheduler.add_tenant(self.engine_spec())
            run = scheduler.run()["eng"]
            return [(e.window_index, e.mean_throughput) for e in run.events]

        serial = campaign(None)
        assert serial == campaign(SerialBackend())
        assert any(tp > 0 for _, tp in serial)

    def test_engine_execution_is_single_node_only(self):
        with pytest.raises(SearchError, match="single-node"):
            self.engine_spec(n_nodes=3)

    def test_adapter_validates_execution_mode(self, cassandra):
        config = cassandra.default_configuration()
        with pytest.raises(DatastoreError, match="execution"):
            SimulatedDatastoreAdapter(cassandra, config, execution="quantum")
        with pytest.raises(DatastoreError, match="workload"):
            SimulatedDatastoreAdapter(cassandra, config, execution="engine")
        with pytest.raises(DatastoreError, match="single-node"):
            SimulatedDatastoreAdapter(
                cassandra,
                config,
                execution="engine",
                workload=self.ENGINE_WORKLOAD,
                n_nodes=3,
            )
