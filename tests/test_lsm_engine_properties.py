"""Property-based tests: the LSM engine is linearizable against a dict.

Under any sequence of puts/gets/deletes — across flushes and both
compaction strategies — the engine must return exactly what a plain
dictionary model returns.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.lsm.engine import LSMEngine

from tests.conftest import make_knobs

KEYS = st.integers(min_value=0, max_value=30).map(lambda i: f"k{i:02d}")

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, st.binary(min_size=0, max_size=80)),
        st.tuples(st.just("get"), KEYS, st.just(b"")),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
    ),
    max_size=120,
)


def run_model_check(ops, compaction_method, flush_every=17):
    # A tiny memtable so the op sequence crosses several flushes.
    knobs = make_knobs(
        compaction_method=compaction_method,
        memtable_space_bytes=4 * 1024,
        memtable_cleanup_threshold=0.5,
        sstable_target_bytes=2 * 1024,
    )
    engine = LSMEngine(knobs)
    model = {}
    for i, (kind, key, value) in enumerate(ops):
        if kind == "put":
            engine.put(key, value)
            model[key] = value
        elif kind == "delete":
            engine.delete(key)
            model.pop(key, None)
        else:
            assert engine.get(key) == model.get(key)
        if i % flush_every == flush_every - 1:
            engine.flush()
    # Drain all background work, then check every key one last time.
    engine.idle_until_compact()
    for key in {k for _, k, _ in ops}:
        assert engine.get(key) == model.get(key)


class TestEngineLinearizability:
    @given(ops=operations)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_size_tiered_matches_dict(self, ops):
        run_model_check(ops, SIZE_TIERED)

    @given(ops=operations)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_leveled_matches_dict(self, ops):
        run_model_check(ops, LEVELED)

    @given(ops=operations, switch_at=st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_strategy_switch_preserves_data(self, ops, switch_at):
        """Online reconfiguration mid-stream must never lose writes."""
        knobs = make_knobs(
            memtable_space_bytes=4 * 1024,
            memtable_cleanup_threshold=0.5,
            sstable_target_bytes=2 * 1024,
        )
        engine = LSMEngine(knobs)
        model = {}
        for i, (kind, key, value) in enumerate(ops):
            if i == switch_at:
                engine.reconfigure(
                    make_knobs(
                        compaction_method=LEVELED,
                        memtable_space_bytes=4 * 1024,
                        memtable_cleanup_threshold=0.5,
                        sstable_target_bytes=2 * 1024,
                    )
                )
            if kind == "put":
                engine.put(key, value)
                model[key] = value
            elif kind == "delete":
                engine.delete(key)
                model.pop(key, None)
            else:
                assert engine.get(key) == model.get(key)
        engine.idle_until_compact()
        for key in {k for _, k, _ in ops}:
            assert engine.get(key) == model.get(key)

    @given(ops=operations)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_clock_monotone(self, ops):
        knobs = make_knobs(memtable_space_bytes=4 * 1024)
        engine = LSMEngine(knobs)
        last = engine.clock.now
        for kind, key, value in ops:
            if kind == "put":
                engine.put(key, value)
            elif kind == "delete":
                engine.delete(key)
            else:
                engine.get(key)
            assert engine.clock.now >= last
            last = engine.clock.now

    @given(ops=operations)
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_leveled_invariant_holds_throughout(self, ops):
        knobs = make_knobs(
            compaction_method=LEVELED,
            memtable_space_bytes=4 * 1024,
            sstable_target_bytes=2 * 1024,
        )
        engine = LSMEngine(knobs)
        for i, (kind, key, value) in enumerate(ops):
            if kind == "put":
                engine.put(key, value)
            elif kind == "delete":
                engine.delete(key)
            else:
                engine.get(key)
            if i % 25 == 24:
                engine.layout.check_leveled_invariant()
        engine.idle_until_compact()
        engine.layout.check_leveled_invariant()
