import pytest

from repro.bench.ycsb import YCSBBenchmark
from repro.datastore import CassandraLike
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture
def small_workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=1_000_000, krd_mean_ops=50_000)


class TestAnalyticRun:
    def test_produces_result(self, cassandra, small_workload):
        bench = YCSBBenchmark(cassandra, run_seconds=60)
        result = bench.run(cassandra.default_configuration(), small_workload, seed=1)
        assert result.mean_throughput > 0
        assert result.duration_seconds == 60
        assert result.workload is small_workload

    def test_series_buckets_cover_run(self, cassandra, small_workload):
        bench = YCSBBenchmark(cassandra, run_seconds=60, report_interval=10.0)
        result = bench.run(cassandra.default_configuration(), small_workload, seed=1)
        assert 5 <= len(result.series) <= 7

    def test_metadata_attached(self, cassandra, small_workload):
        bench = YCSBBenchmark(cassandra, run_seconds=30)
        result = bench.run(cassandra.default_configuration(), small_workload, seed=1)
        assert "sstable_count" in result.metadata
        assert "cache_hit_ratio" in result.metadata

    def test_fresh_instance_per_run(self, cassandra, small_workload):
        """The Docker-reset property: repeated runs are independent."""
        bench = YCSBBenchmark(cassandra, run_seconds=30)
        a = bench.run(cassandra.default_configuration(), small_workload, seed=2)
        b = bench.run(cassandra.default_configuration(), small_workload, seed=2)
        assert a.mean_throughput == pytest.approx(b.mean_throughput)

    def test_seed_changes_result(self, cassandra, small_workload):
        bench = YCSBBenchmark(cassandra, run_seconds=30)
        a = bench.run(cassandra.default_configuration(), small_workload, seed=1)
        b = bench.run(cassandra.default_configuration(), small_workload, seed=2)
        assert a.mean_throughput != b.mean_throughput

    def test_skip_load(self, cassandra, small_workload):
        bench = YCSBBenchmark(cassandra, run_seconds=30)
        result = bench.run(
            cassandra.default_configuration(), small_workload, seed=1, load=False
        )
        assert result.metadata["sstable_count"] <= 2

    def test_invalid_durations(self, cassandra):
        with pytest.raises(ValueError):
            YCSBBenchmark(cassandra, run_seconds=0)
        with pytest.raises(ValueError):
            YCSBBenchmark(cassandra, step_seconds=0)


class TestEngineRun:
    def test_engine_benchmark_runs(self, cassandra):
        wl = WorkloadSpec(read_ratio=0.5, n_keys=5_000, krd_mean_ops=100.0, value_bytes=64)
        bench = YCSBBenchmark(cassandra)
        result = bench.run_engine(
            cassandra.default_configuration(), wl, n_ops=2_000, load_keys=1_000, seed=3
        )
        assert result.mean_throughput > 0
        assert result.duration_seconds > 0

    def test_engine_benchmark_deterministic(self, cassandra):
        wl = WorkloadSpec(read_ratio=0.3, n_keys=5_000, krd_mean_ops=100.0, value_bytes=64)
        bench = YCSBBenchmark(cassandra)
        a = bench.run_engine(cassandra.default_configuration(), wl, n_ops=1_000, load_keys=500, seed=3)
        b = bench.run_engine(cassandra.default_configuration(), wl, n_ops=1_000, load_keys=500, seed=3)
        assert a.mean_throughput == pytest.approx(b.mean_throughput)
