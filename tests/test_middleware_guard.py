"""Overload protection: SLO tracking, breakers, bulkheads, admission control.

The guard layer's contract is twofold: **off means off** (a scheduler
without ``cluster_capacity`` or per-tenant slo/guard specs is
bit-identical to the unguarded serve loop) and **on means deterministic**
(the same fleet + seed sheds the same tenants, opens the same breakers,
and publishes the same ``guard.*`` event sequence on every rerun, serial
or sharded).
"""

import numpy as np
import pytest

from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.controller import ControllerEvent
from repro.core.search import OptimizationResult
from repro.datastore import CassandraLike
from repro.errors import GuardError, MiddlewareError, ReproError, SearchError
from repro.faults.plan import FaultPlan, TransientFault
from repro.middleware import (
    CapacityLedger,
    CircuitBreaker,
    GuardSpec,
    MiddlewareScheduler,
    SloSpec,
    SloTracker,
    TenantGuard,
    TenantSpec,
)
from repro.middleware.breaker import CLOSED, HALF_OPEN, OPEN
from repro.runtime import EventBus
from repro.runtime.backend import ProcessPoolBackend
from repro.workload.spec import WorkloadSpec

WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


class FakeRafiki:
    """Duck-typed recommender (no cache/seeds: generic merge path)."""

    def __init__(self, datastore):
        self.datastore = datastore
        self._cache = {}

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key not in self._cache:
            self._cache[key] = OptimizationResult(
                configuration=self.datastore.default_configuration(),
                predicted_throughput=0.0,
                evaluations=1,
                equivalent_wall_seconds=0.0,
                strategy="fake",
            )
        return self._cache[key]


class VaryingFakeRafiki(FakeRafiki):
    """Each regime maps to a *different* config, so regime flips push."""

    def __init__(self, datastore):
        super().__init__(datastore)
        self._space = cassandra_space()

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key not in self._cache:
            rng = np.random.default_rng(int(key * 100))
            self._cache[key] = OptimizationResult(
                configuration=self._space.sample_configuration(
                    rng, list(CASSANDRA_KEY_PARAMETERS)
                ),
                predicted_throughput=0.0,
                evaluations=1,
                equivalent_wall_seconds=0.0,
                strategy="fake",
            )
        return self._cache[key]


def window(index, throughput, shed=False, degraded=False, rolled_back=False):
    return ControllerEvent(
        window_index=index,
        read_ratio=0.5,
        reconfigured=False,
        configuration=None,
        mean_throughput=throughput,
        rolled_back=rolled_back,
        degraded=degraded,
        shed=shed,
    )


# ------------------------------------------------------------------ SLO


class TestSloSpec:
    def test_defaults_are_valid(self):
        spec = SloSpec()
        assert spec.allowed_violations == pytest.approx(0.8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"throughput_floor": -1.0},
            {"throughput_floor": float("nan")},
            {"latency_ceiling_ms": 0.0},
            {"window_span": 0},
            {"error_budget": 1.5},
            {"error_budget": -0.1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(GuardError):
            SloSpec(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(GuardError, match="thruput_floor"):
            SloSpec.from_dict({"thruput_floor": 100})

    def test_guard_error_is_a_repro_error(self):
        assert issubclass(GuardError, MiddlewareError)
        assert issubclass(MiddlewareError, ReproError)


class TestSloTracker:
    def test_floor_and_event_flags_violate(self):
        tracker = SloTracker(SloSpec(throughput_floor=100.0))
        assert not tracker.violates(window(0, 150.0))
        assert tracker.violates(window(1, 50.0))
        assert tracker.violates(window(2, 150.0, shed=True))
        assert tracker.violates(window(3, 150.0, degraded=True))
        assert tracker.violates(window(4, 150.0, rolled_back=True))

    def test_latency_ceiling_is_a_throughput_proxy(self):
        # 1000/throughput ms per op: 4 ops/s = 250 ms > 200 ms ceiling.
        tracker = SloTracker(SloSpec(latency_ceiling_ms=200.0))
        assert tracker.violates(window(0, 4.0))
        assert not tracker.violates(window(1, 10.0))
        assert tracker.violates(window(2, 0.0))

    def test_budget_exhausts_then_recovers(self):
        spec = SloSpec(throughput_floor=100.0, window_span=4, error_budget=0.25)
        tracker = SloTracker(spec)   # one violation allowed per 4 windows
        assert tracker.score(window(0, 50.0)) == (True, None)
        violated, transition = tracker.score(window(1, 50.0))
        assert (violated, transition) == (True, "budget_exhausted")
        assert tracker.budget_exhausted
        # Two healthy windows push one violation out of the span.
        assert tracker.score(window(2, 150.0)) == (False, None)
        assert tracker.score(window(3, 150.0)) == (False, None)
        _, transition = tracker.score(window(4, 150.0))
        assert transition == "recovered"
        assert not tracker.budget_exhausted

    def test_attainment(self):
        tracker = SloTracker(SloSpec(throughput_floor=100.0))
        assert tracker.attainment == 1.0
        tracker.score(window(0, 150.0))
        tracker.score(window(1, 50.0))
        assert tracker.attainment == pytest.approx(0.5)


# ------------------------------------------------------------------ breaker


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(GuardError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(GuardError):
            CircuitBreaker("x", cooldown_windows=0)

    def test_consecutive_failures_trip_it_open(self):
        b = CircuitBreaker("search", failure_threshold=2, cooldown_windows=3)
        assert b.record_failure(0) is None
        assert b.record_failure(1) == "open"
        assert b.state == OPEN
        assert b.opened_count == 1

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker("search", failure_threshold=2)
        b.record_failure(0)
        b.record_success(1)
        assert b.record_failure(2) is None
        assert b.state == CLOSED

    def test_open_short_circuits_until_cooldown(self):
        b = CircuitBreaker("push", failure_threshold=1, cooldown_windows=3)
        b.record_failure(0)
        assert b.allow(1) == (False, None)
        assert b.allow(2) == (False, None)
        assert b.short_circuits == 2
        # Cooldown elapsed: exactly one half-open probe is admitted.
        assert b.allow(3) == (True, "half_open")
        assert b.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        b = CircuitBreaker("push", failure_threshold=1, cooldown_windows=1)
        b.record_failure(0)
        b.allow(1)
        assert b.record_success(1) == "close"
        assert b.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        b = CircuitBreaker("push", failure_threshold=1, cooldown_windows=1)
        b.record_failure(0)
        b.allow(1)
        assert b.record_failure(1) == "open"
        assert b.state == OPEN
        assert b.opened_count == 2

    def test_force_open_is_idempotent(self):
        b = CircuitBreaker("push")
        assert b.force_open(5) == "open"
        assert b.force_open(6) is None
        assert b.opened_count == 1


# ------------------------------------------------------------------ ledger


class TestCapacityLedger:
    def test_validation(self):
        for bad in (0.0, -5.0, float("inf"), float("nan")):
            with pytest.raises(GuardError):
                CapacityLedger(bad)

    def test_under_capacity_admits_everyone(self):
        ledger = CapacityLedger(100.0)
        shed, factor = ledger.plan_round({"a": 30.0, "b": 40.0}, ["b", "a"])
        assert shed == [] and factor == 1.0
        assert ledger.charged == {"a": 30.0, "b": 40.0}

    def test_sheds_in_supplied_order_until_it_fits(self):
        ledger = CapacityLedger(100.0)
        demands = {"a": 60.0, "b": 50.0, "c": 40.0}
        shed, factor = ledger.plan_round(demands, ["c", "b", "a"])
        assert shed == ["c", "b"]          # 150 -> 110 -> 60 <= 100
        assert factor == 1.0
        assert ledger.shed_counts == {"c": 1, "b": 1}

    def test_zero_demand_tenants_are_skipped(self):
        ledger = CapacityLedger(100.0)
        shed, _ = ledger.plan_round(
            {"idle": 0.0, "a": 80.0, "b": 70.0}, ["idle", "b", "a"]
        )
        assert shed == ["b"]               # shedding idle frees nothing

    def test_shedding_off_scales_everyone_down(self):
        ledger = CapacityLedger(100.0, shedding=False)
        shed, factor = ledger.plan_round({"a": 100.0, "b": 100.0}, ["b", "a"])
        assert shed == []
        assert factor == pytest.approx(0.5)
        assert ledger.rounds_overloaded == 1
        assert ledger.charged == {"a": 50.0, "b": 50.0}


# ------------------------------------------------------------------ guard


class TestGuardSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"breaker_failures": 0},
            {"breaker_cooldown": 0},
            {"span": 0},
            {"max_searches": -1},
            {"max_restarts": -2},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(GuardError):
            GuardSpec(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(GuardError, match="max_serches"):
            GuardSpec.from_dict({"max_serches": 1})


class TestTenantGuard:
    def events_of(self, guard_kwargs):
        bus = EventBus()
        log = []
        bus.subscribe(log.append)
        return TenantGuard("t", events=bus, **guard_kwargs), log

    def test_bulkhead_caps_searches_per_rolling_span(self):
        guard, log = self.events_of(
            {"spec": GuardSpec(max_searches=1, span=2)}
        )
        assert guard.allow_search(0)
        guard.record_search(0, ok=True)
        assert not guard.allow_search(1)       # budget spent for the span
        assert [e.topic for e in log] == ["guard.bulkhead.exhausted"]
        assert guard.allow_search(2)           # window 0 rolled out

    def test_breaker_trip_publishes_events(self):
        guard, log = self.events_of(
            {"spec": GuardSpec(breaker_failures=1, breaker_cooldown=2)}
        )
        guard.record_push(0, ok=False)
        assert not guard.allow_push(1)
        assert guard.allow_push(2)             # half-open probe
        guard.record_push(2, ok=True)
        assert [e.topic for e in log] == [
            "guard.breaker.open",
            "guard.breaker.short_circuit",
            "guard.breaker.half_open",
            "guard.breaker.close",
        ]

    def test_budget_exhaustion_opens_the_push_breaker(self):
        guard, log = self.events_of(
            {"slo": SloSpec(throughput_floor=100, window_span=2, error_budget=0.0)}
        )
        guard.observe_window(window(0, 50.0))
        assert guard.push_breaker.state == OPEN
        assert [e.topic for e in log] == [
            "guard.slo.violation",
            "guard.slo.budget_exhausted",
            "guard.breaker.open",
        ]
        assert log[-1].payload["reason"] == "error-budget"

    def test_budget_exhaustion_opt_out(self):
        guard, _ = self.events_of(
            {
                "slo": SloSpec(
                    throughput_floor=100, window_span=2, error_budget=0.0
                ),
                "spec": GuardSpec(open_on_budget_exhausted=False),
            }
        )
        guard.observe_window(window(0, 50.0))
        assert guard.push_breaker.state == CLOSED

    def test_no_slo_means_infinite_budget(self):
        guard = TenantGuard("t")
        assert guard.budget_remaining == float("inf")

    def test_publishes_nothing_without_a_bus(self):
        guard = TenantGuard(
            "t", slo=SloSpec(throughput_floor=100, error_budget=0.0)
        )
        guard.observe_window(window(0, 50.0))   # must not raise


# ---------------------------------------------------------- session wiring


def guarded_spec(tenant_id, series, **kwargs):
    kwargs.setdefault("window_seconds", 30)
    kwargs.setdefault("load", False)
    return TenantSpec(
        tenant_id=tenant_id,
        rr_series=series,
        base_workload=WORKLOAD,
        **kwargs,
    )


def run_fleet(
    cassandra, specs, capacity=None, shedding=True, rafiki=None, **sched_kwargs
):
    events = EventBus()
    log = []
    events.subscribe(log.append)
    scheduler = MiddlewareScheduler(
        cassandra,
        rafiki if rafiki is not None else FakeRafiki(cassandra),
        events=events,
        cluster_capacity=capacity,
        shedding=shedding,
        **sched_kwargs,
    )
    for s in specs:
        scheduler.add_tenant(s)
    results = scheduler.run()
    summary = {
        tid: [
            (e.window_index, e.mean_throughput, e.shed, e.degraded)
            for e in r.events
        ]
        for tid, r in results.items()
    }
    log_view = [
        (e.topic, e.message, repr(sorted(e.payload.items())))
        for e in log
        # State-shipping telemetry depends on which worker got which task,
        # so it is exempt from serial==sharded equivalence (see DESIGN.md).
        if not e.topic.startswith("backend.state")
    ]
    return summary, log_view, scheduler


class TestSessionGuardWiring:
    def test_search_faults_trip_the_search_breaker(self, cassandra):
        # Every search attempt fails from window 1 on: the retry budget
        # degrades windows 1..3, which trips the breaker (threshold 3),
        # and the open circuit then *holds* config instead of degrading.
        plan = FaultPlan(
            transient_faults=[
                TransientFault(kind="search", window=w, failures=99)
                for w in range(1, 10)
            ]
        )
        series = [0.1, 0.9, 0.2, 0.8, 0.3, 0.7, 0.4, 0.6, 0.5, 0.1]
        spec = guarded_spec(
            "t",
            series,
            fault_plan=plan,
            guard=GuardSpec(breaker_failures=3, breaker_cooldown=2),
        )
        summary, log, scheduler = run_fleet(cassandra, [spec])
        topics = [t for t, _, _ in log]
        assert "tenant.t.guard.breaker.open" in topics
        assert "tenant.t.guard.breaker.short_circuit" in topics
        assert "tenant.t.guard.breaker.half_open" in topics
        guard = scheduler.session("t").guard
        assert guard.search_breaker.opened_count >= 1
        # Short-circuited windows hold config: strictly fewer degraded
        # windows than the 9 faulted ones.
        degraded = sum(1 for _, _, _, d in summary["t"] if d)
        assert 0 < degraded < 9

    def test_restart_bulkhead_caps_reconfigurations(self, cassandra):
        series = [0.1, 0.9, 0.1, 0.9, 0.1, 0.9]
        base = guarded_spec("free", list(series))
        capped = guarded_spec(
            "capped",
            list(series),
            guard=GuardSpec(max_restarts=1, span=len(series)),
        )
        summary, log, scheduler = run_fleet(
            cassandra, [base, capped], rafiki=VaryingFakeRafiki(cassandra)
        )
        free = scheduler.session("free").result.reconfiguration_count
        capped_count = scheduler.session("capped").result.reconfiguration_count
        assert free > 1
        assert capped_count == 1
        assert any(t == "tenant.capped.guard.bulkhead.exhausted" for t, _, _ in log)

    def test_capacity_factor_validated(self, cassandra):
        _, _, scheduler = run_fleet(cassandra, [guarded_spec("t", [0.5])])
        session = scheduler.session("t")
        session.start(load_keys=None)
        with pytest.raises(SearchError, match="capacity_factor"):
            session.begin_window(0.5, capacity_factor=0.0)
        with pytest.raises(SearchError, match="capacity_factor"):
            session.begin_window(0.5, capacity_factor=1.5)

    def test_shed_window_requires_started_session(self, cassandra):
        _, _, scheduler = run_fleet(cassandra, [guarded_spec("t", [0.5])])
        session = scheduler.session("t")
        session.start(load_keys=None)
        event = session.record_shed_window(0.5)
        assert event.shed and event.mean_throughput == 0.0
        session.begin_window(0.5)
        with pytest.raises(SearchError, match="still in phase"):
            session.record_shed_window(0.5)


# ----------------------------------------------------- scheduler integration


def overload_fleet(floor=1000.0):
    slo = SloSpec(throughput_floor=floor, window_span=4, error_budget=0.25)
    return [
        guarded_spec("v1", [0.3] * 8, seed=1, priority=0, slo=slo),
        guarded_spec("v2", [0.6] * 8, seed=2, priority=0, slo=slo),
        guarded_spec(
            "hog", [0.5] * 8, seed=3, priority=5, n_nodes=4, slo=slo
        ),
    ]


class TestAdmissionControl:
    def capacity_for(self, cassandra):
        # Probe the unguarded fleet so the capacity sits between
        # victims-only demand and full-fleet demand.
        summary, _, _ = run_fleet(cassandra, overload_fleet())
        per = {t: summary[t][1][1] for t in summary}
        return sum(per.values()) * 0.7

    def test_priority_shedding_protects_victims(self, cassandra):
        capacity = self.capacity_for(cassandra)
        unguarded, _, _ = run_fleet(cassandra, overload_fleet())
        guarded, log, scheduler = run_fleet(
            cassandra, overload_fleet(), capacity=capacity
        )
        sheds = {
            t: sum(1 for e in guarded[t] if e[2]) for t in guarded
        }
        assert sheds["hog"] > 0
        assert sheds["v1"] == sheds["v2"] == 0
        # Victims keep serving exactly what they served unguarded.
        for victim in ("v1", "v2"):
            assert [e[1] for e in guarded[victim]] == [
                e[1] for e in unguarded[victim]
            ]
        assert any(t == "guard.shed" for t, _, _ in log)

    def test_shedding_is_deterministic_across_reruns(self, cassandra):
        capacity = self.capacity_for(cassandra)
        first = run_fleet(cassandra, overload_fleet(), capacity=capacity)[:2]
        second = run_fleet(cassandra, overload_fleet(), capacity=capacity)[:2]
        assert first == second

    def test_sharded_shedding_matches_serial(self, cassandra):
        capacity = self.capacity_for(cassandra)
        serial = run_fleet(cassandra, overload_fleet(), capacity=capacity)[:2]
        sharded = run_fleet(
            cassandra,
            overload_fleet(),
            capacity=capacity,
            backend=ProcessPoolBackend(workers=2),
        )[:2]
        assert sharded == serial

    def test_shedding_off_degrades_everyone(self, cassandra):
        capacity = self.capacity_for(cassandra)
        unguarded, _, _ = run_fleet(cassandra, overload_fleet())
        scaled, _, scheduler = run_fleet(
            cassandra, overload_fleet(), capacity=capacity, shedding=False
        )
        assert scheduler.ledger.rounds_overloaded > 0
        for tenant in ("v1", "v2", "hog"):
            assert all(not e[2] for e in scaled[tenant])   # nobody shed
            # Overloaded rounds served strictly less than unguarded.
            assert sum(e[1] for e in scaled[tenant]) < sum(
                e[1] for e in unguarded[tenant]
            )

    def test_idle_guard_layer_is_bit_identical_off(self, cassandra):
        """A capacity the fleet never reaches must change nothing."""
        off = run_fleet(cassandra, overload_fleet())[:2]
        idle = run_fleet(cassandra, overload_fleet(), capacity=1e12)[:2]
        assert idle == off

    def test_guard_report_shape(self, cassandra):
        capacity = self.capacity_for(cassandra)
        _, _, scheduler = run_fleet(
            cassandra, overload_fleet(), capacity=capacity
        )
        report = scheduler.guard_report()
        assert set(report) == {"v1", "v2", "hog"}
        hog = report["hog"]
        assert hog["priority"] == 5
        assert hog["sheds"] > 0
        assert 0.0 <= hog["slo"]["attainment"] <= 1.0
        assert set(hog["breakers"]) == {"search", "push"}


class TestSchedulerValidation:
    def test_workers_below_one_rejected(self, cassandra):
        with pytest.raises(SearchError, match="workers"):
            MiddlewareScheduler(cassandra, FakeRafiki(cassandra), workers=0)

    def test_process_backend_string_needs_workers(self, cassandra):
        with pytest.raises(SearchError, match="workers"):
            MiddlewareScheduler(
                cassandra, FakeRafiki(cassandra), backend="process"
            )

    def test_unknown_backend_string_rejected(self, cassandra):
        with pytest.raises(SearchError, match="unknown backend"):
            MiddlewareScheduler(
                cassandra, FakeRafiki(cassandra), backend="threads"
            )

    def test_backend_strings_resolve(self, cassandra):
        serial = MiddlewareScheduler(
            cassandra, FakeRafiki(cassandra), backend="serial"
        )
        assert serial.backend is not None
        pooled = MiddlewareScheduler(
            cassandra, FakeRafiki(cassandra), backend="process", workers=2
        )
        assert isinstance(pooled.backend, ProcessPoolBackend)

    def test_bad_capacity_rejected(self, cassandra):
        with pytest.raises(GuardError, match="capacity"):
            MiddlewareScheduler(
                cassandra, FakeRafiki(cassandra), cluster_capacity=-1.0
            )
