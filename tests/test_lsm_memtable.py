import pytest

from repro.lsm.memtable import Memtable
from repro.lsm.record import Record


def rec(key, ts=1.0, size=10):
    return Record(key=key, timestamp=ts, value=b"x" * size)


class TestMemtable:
    def test_put_get(self):
        mt = Memtable(capacity_bytes=10_000)
        mt.put(rec("a", 1.0))
        assert mt.get("a").timestamp == 1.0

    def test_get_missing_none(self):
        assert Memtable(1000).get("nope") is None

    def test_newer_version_wins(self):
        mt = Memtable(10_000)
        mt.put(rec("a", 1.0, size=5))
        mt.put(rec("a", 2.0, size=7))
        assert len(mt.get("a").value) == 7

    def test_stale_write_ignored(self):
        mt = Memtable(10_000)
        mt.put(rec("a", 2.0, size=7))
        mt.put(rec("a", 1.0, size=5))
        assert len(mt.get("a").value) == 7

    def test_byte_accounting_on_overwrite(self):
        mt = Memtable(10_000)
        mt.put(rec("a", 1.0, size=100))
        before = mt.size_bytes
        mt.put(rec("a", 2.0, size=100))
        assert mt.size_bytes == before

    def test_tombstones_stored(self):
        mt = Memtable(10_000)
        mt.put(rec("a", 1.0))
        mt.put(Record.tombstone("a", 2.0))
        assert mt.get("a").is_tombstone
        assert "a" in mt

    def test_should_flush_threshold(self):
        mt = Memtable(capacity_bytes=1000)
        assert not mt.should_flush(0.5)
        while mt.size_bytes < 500:
            mt.put(rec(f"k{mt.size_bytes}", 1.0, size=50))
        assert mt.should_flush(0.5)

    def test_fill_fraction(self):
        mt = Memtable(capacity_bytes=1000)
        mt.put(rec("a", 1.0, size=100 - 40 - 1))  # size_bytes == 100
        assert mt.fill_fraction == pytest.approx(0.1)

    def test_drain_sorted_and_empties(self):
        mt = Memtable(10_000)
        for k in ["c", "a", "b"]:
            mt.put(rec(k, 1.0))
        drained = list(mt.drain())
        assert [r.key for r in drained] == ["a", "b", "c"]
        assert len(mt) == 0
        assert mt.size_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Memtable(0)
