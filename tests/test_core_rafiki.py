import pytest

from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.anova import AnovaRanking, ParameterEffect
from repro.core.rafiki import Rafiki, RafikiPipeline
from repro.datastore import CassandraLike, ScyllaLike
from repro.errors import SearchError
from repro.ml.ensemble import EnsembleConfig
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def base_workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=1_000_000)


@pytest.fixture(scope="module")
def pipeline_result(cassandra, base_workload):
    pipe = RafikiPipeline(
        cassandra,
        base_workload,
        benchmark=YCSBBenchmark(cassandra, run_seconds=30),
        ensemble_config=EnsembleConfig(n_networks=4, max_epochs=60),
        n_workloads=5,
        n_configurations=8,
        n_faulty=2,
        seed=3,
    )
    return pipe.run(key_parameters=CASSANDRA_KEY_PARAMETERS)


class TestPipeline:
    def test_produces_rafiki_and_report(self, pipeline_result):
        rafiki, report = pipeline_result
        assert isinstance(rafiki, Rafiki)
        assert report.key_parameters == list(CASSANDRA_KEY_PARAMETERS)
        assert len(report.dataset) == 5 * 8 - 2
        assert report.surrogate.is_fitted

    def test_recommend_returns_valid_configuration(self, pipeline_result, cassandra):
        rafiki, _ = pipeline_result
        result = rafiki.recommend(0.8)
        for name in CASSANDRA_KEY_PARAMETERS:
            cassandra.space[name].validate(result.configuration[name])

    def test_recommend_cached_per_rr_band(self, pipeline_result):
        rafiki, _ = pipeline_result
        a = rafiki.recommend(0.80)
        b = rafiki.recommend(0.81)  # same 0.05-band
        assert a is b

    def test_recommend_cache_bypass(self, pipeline_result):
        rafiki, _ = pipeline_result
        a = rafiki.recommend(0.6)
        b = rafiki.recommend(0.6, use_cache=False)
        assert a is not b

    def test_recommend_validates_rr(self, pipeline_result):
        rafiki, _ = pipeline_result
        with pytest.raises(SearchError):
            rafiki.recommend(1.2)

    def test_invalid_cache_resolution_rejected_up_front(self, pipeline_result, cassandra):
        """A zero/negative resolution used to be a silent ZeroDivisionError."""
        _, report = pipeline_result
        for bad in (0.0, -0.05):
            with pytest.raises(SearchError, match="rr_cache_resolution"):
                Rafiki(
                    cassandra,
                    report.surrogate,
                    report.key_parameters,
                    rr_cache_resolution=bad,
                )

    def test_boundary_read_ratios_quantize_onto_grid(self, pipeline_result, cassandra):
        """RR 0.0 and 1.0 must land on valid grid keys for any resolution."""
        _, report = pipeline_result
        rafiki = Rafiki(
            cassandra,
            report.surrogate,
            report.key_parameters,
            rr_cache_resolution=0.3,  # does not divide 1 evenly
        )
        assert rafiki.cache.quantize(0.0) == 0.0
        assert 0.0 <= rafiki.cache.quantize(1.0) <= 1.0

    def test_cache_stats_and_bounds(self, pipeline_result, cassandra):
        _, report = pipeline_result
        rafiki = Rafiki(cassandra, report.surrogate, report.key_parameters)
        assert rafiki.cache.capacity == 128
        a = rafiki.recommend(0.80)
        b = rafiki.recommend(0.81)  # same band -> cache hit
        assert a is b
        assert rafiki.cache.stats.hits == 1
        assert rafiki.cache.stats.misses == 1

    def test_predicted_throughput_positive(self, pipeline_result, cassandra):
        rafiki, _ = pipeline_result
        assert rafiki.predicted_throughput(0.5, cassandra.default_configuration()) > 0

    def test_identify_selects_five(self, cassandra, base_workload):
        pipe = RafikiPipeline(
            cassandra,
            base_workload,
            benchmark=YCSBBenchmark(cassandra, run_seconds=20),
            anova_repeats=2,
            seed=0,
        )
        ranking, selected = pipe.identify_key_parameters()
        assert len(selected) == 5
        assert isinstance(ranking, AnovaRanking)
        # The consolidation rule (§4.5): no raw memtable-space params.
        assert not set(selected) & {
            "memtable_flush_writers",
            "memtable_heap_space_in_mb",
            "memtable_offheap_space_in_mb",
        }

    def test_dataset_can_be_reused(self, cassandra, base_workload, pipeline_result):
        _, report = pipeline_result
        pipe = RafikiPipeline(
            cassandra,
            base_workload,
            ensemble_config=EnsembleConfig(n_networks=2, max_epochs=30),
            seed=4,
        )
        rafiki, new_report = pipe.run(
            key_parameters=CASSANDRA_KEY_PARAMETERS, dataset=report.dataset
        )
        assert new_report.dataset is report.dataset
        assert rafiki.recommend(0.5).predicted_throughput > 0


class TestScyllaPath:
    def test_scylla_derives_from_cassandra_ranking(self):
        """§4.10: strip auto-tuned params from the Cassandra ranking."""
        scylla = ScyllaLike()
        fake_ranking = AnovaRanking(
            [
                ParameterEffect(name="compaction_method", throughput_std=10.0),
                ParameterEffect(name="concurrent_writes", throughput_std=9.0),
                ParameterEffect(name="file_cache_size_in_mb", throughput_std=8.0),
                ParameterEffect(name="memtable_cleanup_threshold", throughput_std=7.0),
                ParameterEffect(name="concurrent_compactors", throughput_std=6.0),
                ParameterEffect(name="memtable_flush_writers", throughput_std=5.0),
                ParameterEffect(name="compaction_throughput_mb_per_sec", throughput_std=4.0),
                ParameterEffect(name="bloom_filter_fp_chance", throughput_std=3.0),
                ParameterEffect(name="sstable_size_in_mb", throughput_std=2.5),
                ParameterEffect(name="concurrent_reads", throughput_std=2.0),
            ]
        )
        pipe = RafikiPipeline(
            scylla,
            WorkloadSpec(read_ratio=0.7, n_keys=1_000_000),
            cassandra_ranking=fake_ranking,
            seed=0,
        )
        _, selected = pipe.identify_key_parameters()
        assert len(selected) == 5
        assert not set(selected) & scylla.autotuned_parameters
        assert "compaction_method" in selected
