"""The documented public API stays importable from the package root."""


import repro
from repro.errors import (
    ConfigurationError,
    DatastoreError,
    KeyNotFound,
    ReproError,
    SearchError,
    TrainingError,
    WorkloadError,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_headline_classes_exported(self):
        for name in [
            "CassandraLike",
            "ScyllaLike",
            "Cluster",
            "Rafiki",
            "RafikiPipeline",
            "SurrogateModel",
            "YCSBBenchmark",
            "MGRastTraceGenerator",
            "WorkloadSpec",
        ]:
            assert name in repro.__all__

    def test_quickstart_docstring_present(self):
        assert "Quickstart" in repro.__doc__


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in [
            ConfigurationError,
            WorkloadError,
            DatastoreError,
            TrainingError,
            SearchError,
        ]:
            assert issubclass(exc, ReproError)

    def test_key_not_found_is_datastore_error(self):
        assert issubclass(KeyNotFound, DatastoreError)
        err = KeyNotFound("abc")
        assert err.key == "abc"
        assert "abc" in str(err)
