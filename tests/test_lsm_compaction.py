import itertools

import pytest

from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.errors import ConfigurationError
from repro.lsm.compaction import (
    L0_COMPACTION_TRIGGER,
    LeveledStrategy,
    SizeTieredStrategy,
    TableLayout,
    make_strategy,
)
from repro.lsm.record import Record
from repro.lsm.sstable import SSTable

_ids = itertools.count(1)
_tasks = itertools.count(1)


def next_task_id():
    return next(_tasks)


def make_table(n_keys=10, size=20, level=0, prefix="k", created_at=0.0):
    rows = [
        Record(key=f"{prefix}{i:04d}", timestamp=1.0, value=b"x" * size)
        for i in range(n_keys)
    ]
    return SSTable(next(_ids), rows, fp_chance=0.01, level=level, created_at=created_at)


class TestTableLayout:
    def test_add_flushed_goes_to_l0(self):
        layout = TableLayout()
        layout.add_flushed(make_table())
        assert len(layout.levels[0]) == 1

    def test_table_count_and_bytes(self):
        layout = TableLayout()
        t1, t2 = make_table(), make_table()
        layout.add_flushed(t1)
        layout.add_at_level(t2, 2)
        assert layout.table_count == 2
        assert layout.total_bytes == t1.size_bytes + t2.size_bytes

    def test_remove(self):
        layout = TableLayout()
        t = make_table()
        layout.add_flushed(t)
        layout.remove([t])
        assert layout.table_count == 0

    def test_read_candidates_l0_newest_first(self):
        layout = TableLayout()
        t1 = make_table(created_at=1.0)
        t2 = make_table(created_at=2.0)
        layout.add_flushed(t1)
        layout.add_flushed(t2)
        cands = layout.read_candidates("k0001")
        assert cands[0] is t2 and cands[1] is t1

    def test_read_candidates_one_per_upper_level(self):
        layout = TableLayout()
        left = make_table(n_keys=5, prefix="a")
        right = make_table(n_keys=5, prefix="z")
        layout.add_at_level(left, 1)
        layout.add_at_level(right, 1)
        cands = layout.read_candidates("a0001")
        assert cands == [left]

    def test_leveled_invariant_check(self):
        layout = TableLayout()
        layout.add_at_level(make_table(prefix="a"), 1)
        layout.add_at_level(make_table(prefix="a"), 1)  # overlapping!
        with pytest.raises(AssertionError):
            layout.check_leveled_invariant()

    def test_overlapping_query(self):
        layout = TableLayout()
        t = make_table(prefix="m")
        layout.add_at_level(t, 1)
        assert layout.overlapping(1, "m0000", "m9999") == [t]
        assert layout.overlapping(1, "a", "b") == []
        assert layout.overlapping(9, "a", "z") == []


class TestSizeTieredStrategy:
    def test_triggers_on_four_similar_tables(self):
        strategy = SizeTieredStrategy()
        layout = TableLayout()
        for _ in range(4):
            layout.add_flushed(make_table(n_keys=10))
        tasks = strategy.propose(layout, set(), next_task_id)
        assert len(tasks) == 1
        assert len(tasks[0].input_tables) == 4

    def test_no_trigger_below_threshold(self):
        strategy = SizeTieredStrategy()
        layout = TableLayout()
        for _ in range(3):
            layout.add_flushed(make_table())
        assert strategy.propose(layout, set(), next_task_id) == []

    def test_dissimilar_sizes_not_bucketed(self):
        strategy = SizeTieredStrategy()
        layout = TableLayout()
        for i in range(4):
            layout.add_flushed(make_table(n_keys=10 * (i + 1) ** 3))
        assert strategy.propose(layout, set(), next_task_id) == []

    def test_busy_tables_skipped(self):
        strategy = SizeTieredStrategy()
        layout = TableLayout()
        tables = [make_table() for _ in range(4)]
        for t in tables:
            layout.add_flushed(t)
        busy = {tables[0].table_id}
        assert strategy.propose(layout, busy, next_task_id) == []

    def test_full_merge_drops_tombstones(self):
        strategy = SizeTieredStrategy()
        layout = TableLayout()
        for _ in range(4):
            layout.add_flushed(make_table())
        task = strategy.propose(layout, set(), next_task_id)[0]
        assert task.drop_tombstones  # inputs == whole layout

    def test_partial_merge_keeps_tombstones(self):
        strategy = SizeTieredStrategy()
        layout = TableLayout()
        for _ in range(4):
            layout.add_flushed(make_table(n_keys=10))
        layout.add_at_level(make_table(n_keys=1000), 0)
        task = strategy.propose(layout, set(), next_task_id)[0]
        assert not task.drop_tombstones

    def test_min_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            SizeTieredStrategy(min_threshold=1)

    def test_io_bytes_is_double_input(self):
        strategy = SizeTieredStrategy()
        layout = TableLayout()
        for _ in range(4):
            layout.add_flushed(make_table())
        task = strategy.propose(layout, set(), next_task_id)[0]
        assert task.io_bytes == pytest.approx(2 * task.input_bytes)


class TestLeveledStrategy:
    def test_l0_trigger(self):
        strategy = LeveledStrategy(sstable_target_bytes=1000)
        layout = TableLayout()
        for _ in range(L0_COMPACTION_TRIGGER):
            layout.add_flushed(make_table())
        tasks = strategy.propose(layout, set(), next_task_id)
        assert any(t.target_level == 1 for t in tasks)

    def test_l0_merge_includes_overlapping_l1(self):
        strategy = LeveledStrategy(sstable_target_bytes=1000)
        layout = TableLayout()
        l1 = make_table(prefix="k")
        layout.add_at_level(l1, 1)
        for _ in range(L0_COMPACTION_TRIGGER):
            layout.add_flushed(make_table(prefix="k"))
        task = [t for t in strategy.propose(layout, set(), next_task_id) if t.target_level == 1][0]
        assert l1 in task.input_tables

    def test_spill_when_level_over_budget(self):
        strategy = LeveledStrategy(sstable_target_bytes=100)
        layout = TableLayout()
        # Level 1 budget = 100 * 10 = 1000 bytes; add well beyond it.
        for i in range(30):
            layout.add_at_level(make_table(n_keys=2, prefix=f"p{i:02d}"), 1)
        tasks = strategy.propose(layout, set(), next_task_id)
        assert any(t.target_level == 2 for t in tasks)

    def test_level_capacity_grows_by_fanout(self):
        strategy = LeveledStrategy(sstable_target_bytes=100)
        assert strategy.level_capacity_bytes(2) == 10 * strategy.level_capacity_bytes(1)

    def test_invalid_target_size(self):
        with pytest.raises(ConfigurationError):
            LeveledStrategy(sstable_target_bytes=0)


class TestMakeStrategy:
    def test_size_tiered(self):
        assert isinstance(make_strategy(SIZE_TIERED, 1000), SizeTieredStrategy)

    def test_leveled(self):
        assert isinstance(make_strategy(LEVELED, 1000), LeveledStrategy)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_strategy("MysteryStrategy", 1000)
