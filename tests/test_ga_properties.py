"""Property-based tests on GA invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.ga.algorithm import GeneticAlgorithm
from repro.ga.constraints import penalized_fitness
from repro.ga.encoding import ConfigurationEncoder
from repro.ga.operators import weighted_average_crossover

SPACE = cassandra_space()
ENCODER = ConfigurationEncoder(SPACE, CASSANDRA_KEY_PARAMETERS)


class TestGaInvariants:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_result_always_feasible(self, seed):
        """Whatever the fitness landscape, the returned configuration is
        valid (integral, in bounds)."""
        rng = np.random.default_rng(seed)
        weights = rng.standard_normal(ENCODER.n_genes)

        def fitness(genes):
            return float(weights @ genes)

        ga = GeneticAlgorithm(ENCODER, fitness, population_size=12, generations=6)
        result = ga.run(seed=seed)
        for name in ENCODER.names:
            SPACE[name].validate(result.best_configuration[name])

    @given(
        seed=st.integers(min_value=0, max_value=500),
        violation=st.floats(min_value=0.001, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_penalty_strictly_reduces_fitness(self, seed, violation):
        rng = np.random.default_rng(seed)
        raw = float(rng.normal(0, 100))
        scale = float(rng.uniform(1, 1000))
        assert penalized_fitness(raw, violation, scale) < raw

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_crossover_children_stay_in_bounds(self, seed):
        rng = np.random.default_rng(seed)
        a = ENCODER.random_genes(rng)
        b = ENCODER.random_genes(rng)
        child = weighted_average_crossover(a, b, rng)
        assert np.all(child >= ENCODER.lower - 1e-9)
        assert np.all(child <= ENCODER.upper + 1e-9)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_more_generations_never_worse(self, seed):
        rng = np.random.default_rng(seed)
        target = ENCODER.random_genes(rng)

        def fitness(genes):
            return -float(np.sum((genes - target) ** 2))

        short = GeneticAlgorithm(
            ENCODER, fitness, population_size=12, generations=3,
            stagnation_limit=10**9,
        ).run(seed=seed)
        long = GeneticAlgorithm(
            ENCODER, fitness, population_size=12, generations=25,
            stagnation_limit=10**9,
        ).run(seed=seed)
        assert long.best_fitness >= short.best_fitness - 1e-9
