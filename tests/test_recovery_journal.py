"""Append-only JSONL journals (repro.recovery.journal)."""

import json

import pytest

from repro.errors import PersistenceError
from repro.recovery.journal import Journal, read_journal
from repro.runtime.events import EventBus

HEADER = {"seed": 3, "n_workloads": 4, "space": "cassandra-3.7"}


def open_journal(path, header=None):
    return Journal.open(path, "test-journal", header or HEADER)


class TestAppendAndResume:
    def test_fresh_journal_returns_no_records(self, tmp_path):
        journal, records = open_journal(tmp_path / "j.wal")
        assert records == []
        journal.close()

    def test_reopen_returns_appended_records(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.append({"index": 0, "throughput": 123.5})
        journal.append({"index": 1, "throughput": 99.25})
        journal.close()
        journal, records = open_journal(path)
        journal.close()
        assert records == [
            {"index": 0, "throughput": 123.5},
            {"index": 1, "throughput": 99.25},
        ]

    def test_appends_continue_after_reopen(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.append({"index": 0})
        journal.close()
        journal, _ = open_journal(path)
        journal.append({"index": 1})
        journal.close()
        _, records = read_journal(path, kind="test-journal")
        assert [r["index"] for r in records] == [0, 1]

    def test_floats_round_trip_exactly(self, tmp_path):
        path = tmp_path / "j.wal"
        value = 0.1 + 0.2  # not exactly representable in decimal
        journal, _ = open_journal(path)
        journal.append({"v": value})
        journal.close()
        _, records = read_journal(path)
        assert records[0]["v"] == value

    def test_append_on_closed_journal_raises(self, tmp_path):
        journal, _ = open_journal(tmp_path / "j.wal")
        journal.close()
        with pytest.raises(PersistenceError):
            journal.append({"index": 0})


class TestTornTail:
    def test_torn_final_line_is_truncated_away(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.append({"index": 0})
        journal.append({"index": 1})
        journal.close()
        text = path.read_text()
        # Tear the last line mid-way, as a kill mid-append would.
        lines = text.splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        journal, records = open_journal(path)
        assert [r["index"] for r in records] == [0]
        journal.append({"index": 1})
        journal.close()
        _, records = read_journal(path)
        assert [r["index"] for r in records] == [0, 1]

    def test_complete_looking_but_corrupt_final_line_treated_as_torn(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.append({"index": 0})
        journal.append({"index": 1})
        journal.close()
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + lines[-1].replace("1", "2", 1))
        _, records = open_journal(path)
        assert [r["index"] for r in records] == [0]


class TestCorruption:
    def test_middle_corruption_raises(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.append({"index": 0})
        journal.append({"index": 1})
        journal.close()
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1].replace("0", "9", 1)  # damage a non-final record
        path.write_text("".join(lines))
        with pytest.raises(PersistenceError, match="bad record"):
            open_journal(path)

    def test_bad_header_line_raises(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_text("not json\n")
        with pytest.raises(PersistenceError, match="header"):
            open_journal(path)

    def test_corruption_publishes_event(self, tmp_path):
        path = tmp_path / "j.wal"
        path.write_text("not json\n")
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="recovery.corrupt_artifact")
        with pytest.raises(PersistenceError):
            Journal.open(path, "test-journal", HEADER, events=bus)
        assert len(seen) == 1


class TestHeaderFingerprint:
    def test_different_header_refuses_to_resume(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.close()
        with pytest.raises(PersistenceError, match="different run"):
            open_journal(path, header={**HEADER, "seed": 4})

    def test_wrong_kind_refuses(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.close()
        with pytest.raises(PersistenceError):
            Journal.open(path, "other-kind", HEADER)

    def test_tuples_compare_like_stored_lists(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = Journal.open(path, "k", {"params": ("a", "b")})
        journal.close()
        journal, _ = Journal.open(path, "k", {"params": ["a", "b"]})
        journal.close()


class TestReadJournal:
    def test_returns_header_and_records(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.append({"index": 0})
        journal.close()
        header, records = read_journal(path, kind="test-journal")
        assert header == HEADER
        assert records == [{"index": 0}]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="not found"):
            read_journal(tmp_path / "nope.wal")

    def test_kind_mismatch_raises(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.close()
        with pytest.raises(PersistenceError):
            read_journal(path, kind="other")

    def test_file_is_inspectable_jsonl(self, tmp_path):
        path = tmp_path / "j.wal"
        journal, _ = open_journal(path)
        journal.append({"index": 0})
        journal.close()
        lines = path.read_text().splitlines()
        head = json.loads(lines[0])
        assert head["journal"] == "test-journal"
        assert json.loads(lines[1])["data"] == {"index": 0}
