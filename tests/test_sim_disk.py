import pytest

from repro.sim.disk import DiskModel
from repro.sim.hardware import DEFAULT_SERVER


@pytest.fixture
def disk():
    return DiskModel(DEFAULT_SERVER)


class TestDiskModel:
    def test_seq_write_time_scales_with_bytes(self, disk):
        t1 = disk.seq_write_seconds(1024)
        t2 = disk.seq_write_seconds(2048)
        assert t2 == pytest.approx(2 * t1)

    def test_seq_write_accounts_stats(self, disk):
        disk.seq_write_seconds(1000)
        assert disk.stats.seq_bytes_written == 1000

    def test_seq_read_accounts_stats(self, disk):
        disk.seq_read_seconds(500)
        assert disk.stats.seq_bytes_read == 500

    def test_random_read_counts(self, disk):
        disk.random_read_seconds(3)
        assert disk.stats.random_reads == 3

    def test_random_read_time(self, disk):
        t = disk.random_read_seconds(10)
        iops = DEFAULT_SERVER.disk_rand_iops * DEFAULT_SERVER.disk_count
        assert t == pytest.approx(10 / iops)

    def test_negative_bytes_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.seq_write_seconds(-1)
        with pytest.raises(ValueError):
            disk.seq_read_seconds(-1)
        with pytest.raises(ValueError):
            disk.random_read_seconds(-1)

    def test_background_slows_foreground(self, disk):
        base = disk.seq_write_seconds(10_000)
        disk.set_background_utilization(0.5, 0.5)
        loaded = disk.seq_write_seconds(10_000)
        assert loaded == pytest.approx(2 * base)

    def test_background_clamped_below_one(self, disk):
        disk.set_background_utilization(5.0, 5.0)
        assert disk.background_seq_utilization <= 0.95
        assert disk.background_iops_utilization <= 0.95
        # Foreground never fully starves.
        assert disk.effective_seq_bandwidth > 0

    def test_background_clamped_above_zero(self, disk):
        disk.set_background_utilization(-1.0, -1.0)
        assert disk.background_seq_utilization == 0.0

    def test_compaction_accounting(self, disk):
        disk.account_compaction_bytes(12345)
        assert disk.stats.compaction_bytes == 12345
