import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A tiny collect -> train run shared across CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    dataset = root / "dataset.json"
    surrogate = root / "surrogate.json"
    rc = main(
        [
            "collect",
            "--out", str(dataset),
            "--workloads", "4",
            "--configurations", "5",
            "--faulty", "1",
            "--seed", "3",
            "--quiet",
        ]
    )
    assert rc == 0
    rc = main(
        [
            "train",
            "--dataset", str(dataset),
            "--out", str(surrogate),
            "--networks", "3",
            "--seed", "3",
        ]
    )
    assert rc == 0
    return dataset, surrogate


class TestCollect(object):
    def test_dataset_written(self, artifacts):
        dataset, _ = artifacts
        blob = json.loads(dataset.read_text())
        assert len(blob["samples"]) == 4 * 5 - 1
        assert blob["feature_parameters"]


class TestTrain:
    def test_surrogate_written(self, artifacts):
        _, surrogate = artifacts
        blob = json.loads(surrogate.read_text())
        assert blob["networks"]


class TestWorkers:
    def test_parallel_collect_matches_serial(self, artifacts, tmp_path):
        """--workers N changes scheduling, not results."""
        serial_dataset, _ = artifacts
        parallel_dataset = tmp_path / "dataset-parallel.json"
        rc = main(
            [
                "collect",
                "--out", str(parallel_dataset),
                "--workloads", "4",
                "--configurations", "5",
                "--faulty", "1",
                "--seed", "3",
                "--workers", "2",
                "--quiet",
            ]
        )
        assert rc == 0
        assert json.loads(parallel_dataset.read_text()) == json.loads(
            serial_dataset.read_text()
        )


class TestRecommend:
    def test_prints_configuration_json(self, artifacts, capsys):
        _, surrogate = artifacts
        rc = main(
            [
                "recommend",
                "--surrogate", str(surrogate),
                "--read-ratio", "0.9",
                "--seed", "1",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["read_ratio"] == 0.9
        assert payload["predicted_throughput"] > 0
        assert isinstance(payload["configuration"], dict)


class TestReplay:
    def test_replay_reports_gain(self, artifacts, capsys):
        _, surrogate = artifacts
        rc = main(
            [
                "replay",
                "--surrogate", str(surrogate),
                "--hours", "3",
                "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "static default" in out
        assert "rafiki" in out

    def test_forecast_mode(self, artifacts, capsys):
        _, surrogate = artifacts
        rc = main(
            [
                "replay",
                "--surrogate", str(surrogate),
                "--hours", "2",
                "--mode", "forecast",
                "--seed", "2",
            ]
        )
        assert rc == 0


class TestCharacterize:
    def test_outputs_characterization(self, capsys):
        rc = main(["characterize", "--hours", "4", "--queries", "300", "--seed", "5"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["windows"] == 16
        assert 0.0 <= payload["overall_read_ratio"] <= 1.0
        assert payload["krd_mean_ops"] > 0


class TestValidation:
    def test_unknown_datastore(self, artifacts):
        _, surrogate = artifacts
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--datastore", "mongodb",
                    "--surrogate", str(surrogate),
                    "--read-ratio", "0.5",
                ]
            )

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
