import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A tiny collect -> train run shared across CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    dataset = root / "dataset.json"
    surrogate = root / "surrogate.json"
    rc = main(
        [
            "collect",
            "--out", str(dataset),
            "--workloads", "4",
            "--configurations", "5",
            "--faulty", "1",
            "--seed", "3",
            "--quiet",
        ]
    )
    assert rc == 0
    rc = main(
        [
            "train",
            "--dataset", str(dataset),
            "--out", str(surrogate),
            "--networks", "3",
            "--seed", "3",
        ]
    )
    assert rc == 0
    return dataset, surrogate


class TestCollect(object):
    def test_dataset_written(self, artifacts):
        dataset, _ = artifacts
        blob = json.loads(dataset.read_text())
        assert len(blob["samples"]) == 4 * 5 - 1
        assert blob["feature_parameters"]


class TestTrain:
    def test_surrogate_written(self, artifacts):
        _, surrogate = artifacts
        blob = json.loads(surrogate.read_text())
        assert blob["networks"]


class TestWorkers:
    def test_parallel_collect_matches_serial(self, artifacts, tmp_path):
        """--workers N changes scheduling, not results."""
        serial_dataset, _ = artifacts
        parallel_dataset = tmp_path / "dataset-parallel.json"
        rc = main(
            [
                "collect",
                "--out", str(parallel_dataset),
                "--workloads", "4",
                "--configurations", "5",
                "--faulty", "1",
                "--seed", "3",
                "--workers", "2",
                "--quiet",
            ]
        )
        assert rc == 0
        assert json.loads(parallel_dataset.read_text()) == json.loads(
            serial_dataset.read_text()
        )


class TestRecommend:
    def test_prints_configuration_json(self, artifacts, capsys):
        _, surrogate = artifacts
        rc = main(
            [
                "recommend",
                "--surrogate", str(surrogate),
                "--read-ratio", "0.9",
                "--seed", "1",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["read_ratio"] == 0.9
        assert payload["predicted_throughput"] > 0
        assert isinstance(payload["configuration"], dict)


class TestReplay:
    def test_replay_reports_gain(self, artifacts, capsys):
        _, surrogate = artifacts
        rc = main(
            [
                "replay",
                "--surrogate", str(surrogate),
                "--hours", "3",
                "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "static default" in out
        assert "rafiki" in out

    def test_forecast_mode(self, artifacts, capsys):
        _, surrogate = artifacts
        rc = main(
            [
                "replay",
                "--surrogate", str(surrogate),
                "--hours", "2",
                "--mode", "forecast",
                "--seed", "2",
            ]
        )
        assert rc == 0


class TestServe:
    MANIFEST = {
        "defaults": {"hours": 0.25, "window_seconds": 60},
        "tenants": [
            {"id": "assembly", "seed": 1},
            {"id": "annotation", "seed": 2},
            {
                "id": "archive",
                "seed": 3,
                "nodes": 3,
                "restart_policy": "rolling",
                "restart_seconds_per_node": 5,
            },
        ],
    }

    def test_serve_runs_a_manifest_fleet(self, artifacts, tmp_path, capsys):
        _, surrogate = artifacts
        manifest = tmp_path / "tenants.json"
        manifest.write_text(json.dumps(self.MANIFEST))
        rc = main(
            [
                "serve",
                "--surrogate", str(surrogate),
                "--manifest", str(manifest),
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for tenant_id in ("assembly", "annotation", "archive"):
            assert f"tenant {tenant_id}" in out
        assert "node restarts" in out  # the rolling tenant reports its cost

    def test_serve_rejects_bad_manifest(self, artifacts, tmp_path, capsys):
        _, surrogate = artifacts
        manifest = tmp_path / "bad.json"
        manifest.write_text(json.dumps({"tenants": [{"id": "a", "oops": 1}]}))
        rc = main(
            [
                "serve",
                "--surrogate", str(surrogate),
                "--manifest", str(manifest),
                "--quiet",
            ]
        )
        assert rc == 1
        assert "unknown key" in capsys.readouterr().err

    GUARDED_MANIFEST = {
        "guard": {"cluster_capacity": 50000.0, "shedding": True},
        "defaults": {"hours": 0.25, "window_seconds": 60},
        "tenants": [
            {
                "id": "assembly",
                "seed": 1,
                "slo": {
                    "throughput_floor": 1000.0,
                    "window_span": 4,
                    "error_budget": 0.25,
                },
            },
            {
                "id": "burst",
                "seed": 2,
                "priority": 5,
                "guard": {"breaker_failures": 3, "breaker_cooldown": 4},
            },
        ],
    }

    def test_serve_guarded_manifest_reports_guard_columns(
        self, artifacts, tmp_path, capsys
    ):
        _, surrogate = artifacts
        manifest = tmp_path / "guarded.json"
        manifest.write_text(json.dumps(self.GUARDED_MANIFEST))
        rc = main(
            [
                "serve",
                "--surrogate", str(surrogate),
                "--manifest", str(manifest),
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "shed" in out
        assert "SLO" in out
        assert "breaker opens" in out
        assert "cluster:" in out  # the ledger summary line

    def test_serve_unguarded_manifest_prints_no_guard_columns(
        self, artifacts, tmp_path, capsys
    ):
        _, surrogate = artifacts
        manifest = tmp_path / "plain.json"
        manifest.write_text(json.dumps(self.MANIFEST))
        rc = main(
            [
                "serve",
                "--surrogate", str(surrogate),
                "--manifest", str(manifest),
                "--quiet",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "shed" not in out
        assert "SLO" not in out
        assert "cluster:" not in out

    def test_serve_rejects_bad_cluster_capacity(self, artifacts, tmp_path, capsys):
        _, surrogate = artifacts
        manifest = tmp_path / "tenants.json"
        manifest.write_text(json.dumps(self.MANIFEST))
        rc = main(
            [
                "serve",
                "--surrogate", str(surrogate),
                "--manifest", str(manifest),
                "--cluster-capacity", "-5",
                "--quiet",
            ]
        )
        assert rc == 1
        assert "bad fleet" in capsys.readouterr().err


class TestCharacterize:
    def test_outputs_characterization(self, capsys):
        rc = main(["characterize", "--hours", "4", "--queries", "300", "--seed", "5"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["windows"] == 16
        assert 0.0 <= payload["overall_read_ratio"] <= 1.0
        assert payload["krd_mean_ops"] > 0


class TestJournalAndResume:
    COLLECT = [
        "--workloads", "3",
        "--configurations", "3",
        "--faulty", "1",
        "--seed", "6",
        "--run-seconds", "30",
        "--quiet",
    ]

    def test_resume_after_kill_is_bit_identical(self, tmp_path):
        ref = tmp_path / "ref.json"
        journal = tmp_path / "ref.wal"
        assert main(["collect", "--out", str(ref), "--journal", str(journal),
                     *self.COLLECT]) == 0

        # Simulate a kill after 4 durable samples: truncate a copy of
        # the WAL, then resume from it.
        partial = tmp_path / "partial.wal"
        lines = journal.read_text().splitlines(keepends=True)
        partial.write_text("".join(lines[:5]))
        out = tmp_path / "resumed.json"
        assert main(["resume", "--journal", str(partial), "--out", str(out),
                     "--quiet"]) == 0
        assert out.read_bytes() == ref.read_bytes()

    def test_collect_without_journal_matches_journaled(self, tmp_path):
        plain = tmp_path / "plain.json"
        journaled = tmp_path / "journaled.json"
        assert main(["collect", "--out", str(plain), *self.COLLECT]) == 0
        assert main(["collect", "--out", str(journaled),
                     "--journal", str(tmp_path / "j.wal"), *self.COLLECT]) == 0
        assert plain.read_bytes() == journaled.read_bytes()


class TestCheckpointedTrain:
    def test_interrupted_train_resumes_identically(self, artifacts, tmp_path):
        dataset, _ = artifacts
        ref = tmp_path / "ref.json"
        ckpt = tmp_path / "ckpt"
        args = ["train", "--dataset", str(dataset), "--networks", "3",
                "--seed", "3", "--quiet"]
        assert main([*args, "--out", str(ref),
                     "--checkpoint-dir", str(ckpt)]) == 0
        # Drop one member checkpoint (as if killed mid-train), retrain.
        (ckpt / "member-0002.json").unlink()
        out = tmp_path / "resumed.json"
        assert main([*args, "--out", str(out),
                     "--checkpoint-dir", str(ckpt)]) == 0
        assert out.read_bytes() == ref.read_bytes()


class TestVerifyArtifact:
    def test_valid_dataset(self, artifacts, capsys):
        dataset, _ = artifacts
        assert main(["verify-artifact", str(dataset)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["artifact_kind"] == "performance-dataset"

    def test_valid_surrogate(self, artifacts, capsys):
        _, surrogate = artifacts
        assert main(["verify-artifact", str(surrogate)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["artifact_kind"] == "surrogate"

    def test_valid_journal(self, tmp_path, capsys):
        journal = tmp_path / "j.wal"
        assert main(["collect", "--out", str(tmp_path / "d.json"),
                     "--journal", str(journal),
                     *TestJournalAndResume.COLLECT]) == 0
        capsys.readouterr()  # drop collect's own output
        assert main(["verify-artifact", str(journal)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "journal"
        assert payload["records"] == 9

    def test_corrupt_artifact_exits_nonzero(self, artifacts, tmp_path, capsys):
        dataset, _ = artifacts
        bad = tmp_path / "bad.json"
        bad.write_text(dataset.read_text().replace("0", "1", 1))
        assert main(["verify-artifact", str(bad)]) == 1
        assert "CORRUPT" in capsys.readouterr().err

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["verify-artifact", str(tmp_path / "nope.json")]) == 1


class TestValidation:
    def test_unknown_datastore(self, artifacts):
        _, surrogate = artifacts
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--datastore", "mongodb",
                    "--surrogate", str(surrogate),
                    "--read-ratio", "0.5",
                ]
            )

    def test_missing_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
