import pytest

from repro.lsm.record import RECORD_OVERHEAD_BYTES, Record


class TestRecord:
    def test_size_includes_overhead(self):
        rec = Record(key="k1", timestamp=1.0, value=b"x" * 10)
        assert rec.size_bytes == RECORD_OVERHEAD_BYTES + 2 + 10

    def test_tombstone_has_no_value(self):
        t = Record.tombstone("k1", 2.0)
        assert t.is_tombstone
        assert t.value is None

    def test_tombstone_size(self):
        t = Record.tombstone("kk", 2.0)
        assert t.size_bytes == RECORD_OVERHEAD_BYTES + 2

    def test_supersedes_newer_wins(self):
        old = Record("k", 1.0, b"old")
        new = Record("k", 2.0, b"new")
        assert new.supersedes(old)
        assert not old.supersedes(new)

    def test_supersedes_equal_timestamp(self):
        a = Record("k", 1.0, b"a")
        b = Record("k", 1.0, b"b")
        assert a.supersedes(b)  # ties resolve as >= (idempotent replay)

    def test_supersedes_rejects_different_keys(self):
        with pytest.raises(ValueError):
            Record("k1", 1.0, b"").supersedes(Record("k2", 1.0, b""))

    def test_ordering_by_key_then_time(self):
        records = [Record("b", 1.0), Record("a", 2.0), Record("a", 1.0)]
        ordered = sorted(records)
        assert [(r.key, r.timestamp) for r in ordered] == [
            ("a", 1.0),
            ("a", 2.0),
            ("b", 1.0),
        ]

    def test_frozen(self):
        rec = Record("k", 1.0, b"v")
        with pytest.raises(AttributeError):
            rec.key = "other"
