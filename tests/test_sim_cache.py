import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import LruFileCache

PAGE = 1024


def make_cache(pages: int) -> LruFileCache:
    return LruFileCache(capacity_bytes=pages * PAGE, page_bytes=PAGE)


class TestLruFileCache:
    def test_miss_then_hit(self):
        cache = make_cache(4)
        assert cache.access("a") is False
        assert cache.access("a") is True

    def test_capacity_evicts_lru(self):
        cache = make_cache(2)
        cache.access("a")
        cache.access("b")
        cache.access("c")  # evicts a
        assert cache.access("a") is False
        assert cache.access("c") is True

    def test_access_refreshes_recency(self):
        cache = make_cache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # a now most recent
        cache.access("c")  # evicts b
        assert cache.access("a") is True
        assert cache.access("b") is False

    def test_zero_capacity_never_hits(self):
        cache = make_cache(0)
        cache.access("a")
        assert cache.access("a") is False
        assert cache.hit_ratio == 0.0

    def test_hit_ratio(self):
        cache = make_cache(4)
        cache.access("a")
        cache.access("a")
        cache.access("a")
        assert cache.hit_ratio == pytest.approx(2 / 3)

    def test_resize_shrink_evicts(self):
        cache = make_cache(4)
        for k in "abcd":
            cache.access(k)
        cache.resize(2 * PAGE)
        assert len(cache) == 2
        assert cache.access("d") is True  # most recent survives

    def test_resize_rejects_negative(self):
        with pytest.raises(ValueError):
            make_cache(2).resize(-1)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            LruFileCache(1024, page_bytes=0)

    def test_invalidate_prefix(self):
        cache = make_cache(8)
        cache.access((1, 0))
        cache.access((1, 1))
        cache.access((2, 0))
        assert cache.invalidate_prefix(1) == 2
        assert cache.access((2, 0)) is True
        assert cache.access((1, 0)) is False

    def test_clear(self):
        cache = make_cache(4)
        cache.access("a")
        cache.clear()
        assert len(cache) == 0

    def test_never_exceeds_capacity(self):
        cache = make_cache(3)
        for i in range(100):
            cache.access(i)
            assert len(cache) <= 3


class TestExpectedHitRatio:
    def test_full_working_set_fits(self):
        cache = make_cache(100)
        assert cache.expected_hit_ratio(50.0, working_set_pages=50) == 1.0

    def test_larger_cache_higher_hit(self):
        small = make_cache(10)
        big = make_cache(100)
        ws = 10_000
        assert big.expected_hit_ratio(500.0, ws) > small.expected_hit_ratio(500.0, ws)

    def test_longer_reuse_distance_lower_hit(self):
        cache = make_cache(50)
        assert cache.expected_hit_ratio(100.0, 10_000) > cache.expected_hit_ratio(
            10_000.0, 10_000
        )

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            make_cache(4).expected_hit_ratio(0.0, 100)

    def test_zero_capacity(self):
        assert make_cache(0).expected_hit_ratio(10.0, 100) == 0.0

    @given(
        pages=st.integers(min_value=1, max_value=500),
        krd=st.floats(min_value=1.0, max_value=1e6),
        ws=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_ratio_is_probability(self, pages, krd, ws):
        cache = make_cache(pages)
        h = cache.expected_hit_ratio(krd, ws)
        assert 0.0 <= h <= 1.0

    @given(data=st.lists(st.integers(min_value=0, max_value=20), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_lru_matches_reference_model(self, data):
        """Exact-LRU property: compare against an ordered-list model."""
        cache = make_cache(4)
        model = []
        for key in data:
            hit = cache.access(key)
            assert hit == (key in model)
            if key in model:
                model.remove(key)
            model.append(key)
            if len(model) > 4:
                model.pop(0)
