"""RecommendationCache: quantization guards, LRU bounds, stats."""

import pytest

from repro.core.cache import RecommendationCache
from repro.core.search import OptimizationResult
from repro.errors import SearchError


def result(tag):
    return OptimizationResult(
        configuration=None,
        predicted_throughput=float(tag),
        evaluations=1,
        equivalent_wall_seconds=0.0,
        strategy="test",
    )


class TestQuantize:
    def test_snaps_to_grid(self):
        cache = RecommendationCache(resolution=0.05)
        assert cache.quantize(0.81) == pytest.approx(0.80)
        assert cache.quantize(0.83) == pytest.approx(0.85)

    def test_boundaries_land_on_valid_keys(self):
        for resolution in (0.05, 0.03, 0.3, 0.7, 1.5):
            cache = RecommendationCache(resolution=resolution)
            assert 0.0 <= cache.quantize(0.0) <= 1.0
            assert 0.0 <= cache.quantize(1.0) <= 1.0
            # The same boundary always maps to the same key.
            assert cache.quantize(1.0) == cache.quantize(1.0)
        assert RecommendationCache(resolution=0.05).quantize(1.0) == 1.0
        assert RecommendationCache(resolution=0.05).quantize(0.0) == 0.0

    def test_key_never_exceeds_unit_interval(self):
        # 0.3 grid: round(0.98/0.3)=3 -> 0.9 (in range); round(0.5/0.3)=2 -> 0.6
        cache = RecommendationCache(resolution=0.3)
        for rr in (0.0, 0.2, 0.5, 0.98, 1.0):
            assert 0.0 <= cache.quantize(rr) <= 1.0

    def test_out_of_range_rr_rejected(self):
        cache = RecommendationCache()
        with pytest.raises(SearchError):
            cache.quantize(1.2)
        with pytest.raises(SearchError):
            cache.quantize(-0.1)

    def test_invalid_resolution_rejected(self):
        for bad in (0.0, -0.05, float("nan"), float("inf")):
            with pytest.raises(SearchError, match="rr_cache_resolution"):
                RecommendationCache(resolution=bad)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SearchError):
            RecommendationCache(capacity=0)


class TestLRU:
    def test_capacity_bound_evicts_oldest(self):
        cache = RecommendationCache(resolution=0.05, capacity=2)
        cache.put(0.1, result(1))
        cache.put(0.2, result(2))
        cache.put(0.3, result(3))
        assert len(cache) == 2
        assert 0.1 not in cache
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = RecommendationCache(capacity=2)
        cache.put(0.1, result(1))
        cache.put(0.2, result(2))
        cache.get(0.1)               # 0.1 becomes most recent
        cache.put(0.3, result(3))    # evicts 0.2, not 0.1
        assert 0.1 in cache
        assert 0.2 not in cache

    def test_overwrite_does_not_grow(self):
        cache = RecommendationCache(capacity=2)
        cache.put(0.1, result(1))
        cache.put(0.1, result(2))
        assert len(cache) == 1
        assert cache.get(0.1).predicted_throughput == 2.0

    def test_stats_track_hits_and_misses(self):
        cache = RecommendationCache()
        assert cache.get(0.5) is None
        cache.put(0.5, result(1))
        assert cache.get(0.5) is not None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_clear(self):
        cache = RecommendationCache()
        cache.put(0.5, result(1))
        cache.clear()
        assert len(cache) == 0

    def test_repr_mentions_stats(self):
        cache = RecommendationCache(capacity=4)
        cache.put(0.5, result(1))
        cache.get(0.5)
        text = repr(cache)
        assert "1/4" in text and "1 hits" in text
