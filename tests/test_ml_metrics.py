import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.metrics import (
    mean_absolute_percentage_error,
    percentage_errors,
    r2_score,
    rmse,
)


class TestMape:
    def test_perfect_prediction(self):
        assert mean_absolute_percentage_error([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_value(self):
        assert mean_absolute_percentage_error([100], [110]) == pytest.approx(10.0)

    def test_symmetric_over_magnitude(self):
        assert mean_absolute_percentage_error([100, 200], [110, 220]) == pytest.approx(10.0)

    def test_zero_target_rejected(self):
        with pytest.raises(TrainingError):
            mean_absolute_percentage_error([0.0], [1.0])

    def test_shape_mismatch(self):
        with pytest.raises(TrainingError):
            mean_absolute_percentage_error([1, 2], [1])

    def test_empty(self):
        with pytest.raises(TrainingError):
            mean_absolute_percentage_error([], [])


class TestPercentageErrors:
    def test_signed(self):
        errs = percentage_errors([100, 100], [90, 120])
        assert errs[0] == pytest.approx(-10.0)
        assert errs[1] == pytest.approx(20.0)


class TestRmse:
    def test_known_value(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_zero_for_perfect(self):
        assert rmse([1, 2], [1, 2]) == 0.0


class TestR2:
    def test_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_mean_predictor_zero(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_worse_than_mean_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]) < 0

    def test_constant_targets(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [3.0, 3.0]) == 0.0
