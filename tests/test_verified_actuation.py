"""Verified actuation: per-node applied configs, drift faults, reconciliation.

Covers the full detect -> repair -> quarantine stack: config
fingerprints, the cluster's per-node applied-config state and push
fault machinery (refusals, isolation, stale rejoins), the adapter's
verify/repair surface, the new fault-plan kinds, the injector's arming
of them, the session-level reconcile phase (same-window repair, budget
escalation, telemetry quarantine), and the manifest stanza.  The two
property suites pin the satellite contracts: the reconciler never lets
drift persist silently, and a mixed-config ring's throughput is bounded
by the all-best / all-worst uniform rings.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.controller import ControllerEvent
from repro.core.policies import OraclePolicy
from repro.core.search import OptimizationResult
from repro.datastore import CassandraLike
from repro.datastore.adapter import SimulatedDatastoreAdapter
from repro.datastore.cluster import Cluster
from repro.errors import (
    ActuationError,
    DatastoreError,
    FaultError,
    GuardError,
    PersistenceError,
)
from repro.faults import ActuationFault, FaultInjector, FaultPlan, StaleRecovery
from repro.middleware import (
    DriftReconciler,
    GuardSpec,
    MiddlewareScheduler,
    ReconcileSpec,
    TenantGuard,
    TenantSession,
    TenantSpec,
    parse_manifest,
    specs_from_manifest,
)
from repro.middleware.breaker import CLOSED, OPEN
from repro.middleware.slo import SloSpec
from repro.runtime import EventBus
from repro.workload.spec import WorkloadSpec

WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


class RegimeRafiki:
    """Per-regime table recommender (picklable for sharded workers)."""

    def __init__(self, datastore):
        self.datastore = datastore
        self._cache = {}

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key not in self._cache:
            writes = 64 if read_ratio < 0.5 else 96
            self._cache[key] = OptimizationResult(
                configuration=self.datastore.default_configuration().with_updates(
                    concurrent_writes=writes
                ),
                predicted_throughput=0.0,
                evaluations=1,
                equivalent_wall_seconds=0.0,
                strategy="table",
            )
        return self._cache[key]


def run_campaign(rr_series, fault_plan, reconcile, workers=None,
                 guard=None, seed=3):
    """One 3-node tenant campaign; returns (scheduler, run, trace)."""
    events = EventBus()
    trace = []
    def record(e):
        # State-shipping telemetry depends on which worker got which task,
        # so it is exempt from serial==sharded equivalence (see DESIGN.md).
        if not e.topic.startswith("backend.state"):
            trace.append((e.topic, tuple(sorted(e.payload.items()))))

    events.subscribe(record)
    cassandra = CassandraLike()
    scheduler = MiddlewareScheduler(
        cassandra, RegimeRafiki(cassandra), events=events, workers=workers
    )
    scheduler.add_tenant(
        TenantSpec(
            tenant_id="t",
            rr_series=rr_series,
            base_workload=WORKLOAD,
            seed=seed,
            n_nodes=3,
            window_seconds=60,
            restart_policy="rolling",
            restart_seconds_per_node=5,
            load=False,
            fault_plan=fault_plan,
            reconcile=reconcile,
            guard=guard,
        )
    )
    results = scheduler.run()
    return scheduler, results["t"], trace


def windows_of(trace, topic):
    return [
        dict(payload)["window"]
        for t, payload in trace
        if t == f"tenant.t.{topic}"
    ]


# ---------------------------------------------------------------------------
# Configuration fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_equal_configs_share_a_fingerprint(self, cassandra):
        a = cassandra.default_configuration()
        b = cassandra.default_configuration()
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_different_knobs_differ(self, cassandra):
        base = cassandra.default_configuration()
        tweaked = base.with_updates(concurrent_writes=96)
        assert base.fingerprint() != tweaked.fingerprint()

    def test_fingerprint_is_short_hex(self, cassandra):
        fp = cassandra.default_configuration().fingerprint()
        assert len(fp) == 8
        int(fp, 16)  # hex-parseable


# ---------------------------------------------------------------------------
# Cluster: per-node applied state + push fault machinery
# ---------------------------------------------------------------------------


def make_cluster(cassandra, n_nodes=3, events=None):
    return Cluster(
        cassandra,
        cassandra.default_configuration(),
        n_nodes=n_nodes,
        n_shooters=n_nodes,
        seed=0,
        events=events,
    )


class TestClusterActuation:
    def test_clean_push_lands_everywhere(self, cassandra):
        cluster = make_cluster(cassandra)
        target = cassandra.default_configuration().with_updates(
            concurrent_writes=96
        )
        applied, failed = cluster.apply_config(target)
        assert applied == (0, 1, 2) and failed == ()
        report = cluster.describe_drift()
        assert not report.has_drift
        assert set(report.node_fingerprints) == {target.fingerprint()}

    def test_armed_refusal_makes_a_partial_push(self, cassandra):
        cluster = make_cluster(cassandra)
        cluster.refuse_pushes(1)
        target = cassandra.default_configuration().with_updates(
            concurrent_writes=96
        )
        applied, failed = cluster.apply_config(target)
        assert applied == (0, 2) and failed == (1,)
        report = cluster.describe_drift()
        assert report.drifted_nodes == (1,)
        assert report.node_fingerprints[1] != report.intended_fingerprint
        # The refusal is consumed: the re-push lands.
        assert cluster.apply_node_config(1, target)
        assert not cluster.describe_drift().has_drift

    def test_refusals_accumulate(self, cassandra):
        cluster = make_cluster(cassandra)
        cluster.refuse_pushes(0, 2)
        target = cassandra.default_configuration().with_updates(
            concurrent_writes=64
        )
        assert not cluster.apply_node_config(0, target)
        assert not cluster.apply_node_config(0, target)
        assert cluster.apply_node_config(0, target)

    def test_refusal_count_must_be_positive(self, cassandra):
        with pytest.raises(ActuationError, match="refusal count"):
            make_cluster(cassandra).refuse_pushes(0, 0)

    def test_isolated_node_is_unreachable_until_recovery(self, cassandra):
        cluster = make_cluster(cassandra)
        cluster.isolate_node(2)
        target = cassandra.default_configuration().with_updates(
            concurrent_writes=96
        )
        assert not cluster.apply_node_config(2, target)
        cluster.recover_node(2)  # clears isolation even if not down
        assert cluster.apply_node_config(2, target)

    def test_legacy_reconfigure_syncs_applied_state(self, cassandra):
        cluster = make_cluster(cassandra)
        cluster.refuse_pushes(1, 5)  # legacy path ignores refusals
        cluster.reconfigure(cassandra.effective_knobs(cluster.config))
        assert not cluster.describe_drift().has_drift

    def test_node_index_checked(self, cassandra):
        cluster = make_cluster(cassandra)
        with pytest.raises(DatastoreError, match="out of range"):
            cluster.refuse_pushes(7)
        with pytest.raises(DatastoreError, match="out of range"):
            cluster.apply_node_config(-1, cluster.config)

    def test_down_drifted_nodes_reported_separately(self, cassandra):
        cluster = make_cluster(cassandra)
        cluster.fail_node(1)
        target = cassandra.default_configuration().with_updates(
            concurrent_writes=96
        )
        cluster.apply_config(target, nodes=(0, 2))
        report = cluster.describe_drift()
        assert not report.has_drift          # down nodes serve nothing
        assert report.down_drifted_nodes == (1,)


class TestStaleRejoinIsObservable:
    """Satellite: recovery after a push is detected, not silently served."""

    def test_drifted_rejoin_publishes_node_recovered(self, cassandra):
        events = EventBus()
        seen = []
        events.subscribe(lambda e: seen.append(e))
        cluster = make_cluster(cassandra, events=events)
        cluster.fail_node(1)
        cluster.isolate_node(1)
        target = cassandra.default_configuration().with_updates(
            concurrent_writes=96
        )
        cluster.apply_config(target)  # misses the down+isolated node
        cluster.recover_node(1)
        recoveries = [e for e in seen if e.topic == "cluster.node_recovered"]
        assert len(recoveries) == 1
        payload = recoveries[0].payload
        assert payload["node"] == 1
        assert payload["drifted"] is True
        assert payload["intended_fingerprint"] == target.fingerprint()
        assert payload["applied_fingerprint"] != target.fingerprint()
        # The rejoined node now *serves* the stale knobs: live drift.
        assert cluster.describe_drift().drifted_nodes == (1,)

    def test_clean_rejoin_stays_silent(self, cassandra):
        events = EventBus()
        seen = []
        events.subscribe(lambda e: seen.append(e))
        cluster = make_cluster(cassandra, events=events)
        cluster.fail_node(2)
        cluster.recover_node(2)  # nothing pushed while down
        assert [e for e in seen if e.topic == "cluster.node_recovered"] == []


# ---------------------------------------------------------------------------
# Adapter: verify_config / repair_config
# ---------------------------------------------------------------------------


class TestAdapterVerifyRepair:
    def make_adapter(self, cassandra, n_nodes=3, events=None):
        adapter = SimulatedDatastoreAdapter(
            cassandra, n_nodes=n_nodes, seed=0,
            restart_seconds_per_node=5, events=events,
        )
        adapter.provision(load_keys=None)
        return adapter

    def test_single_server_never_drifts(self, cassandra):
        adapter = self.make_adapter(cassandra, n_nodes=1)
        adapter.apply_config(
            cassandra.default_configuration().with_updates(concurrent_writes=96)
        )
        report = adapter.verify_config()
        assert not report.has_drift
        assert len(report.node_fingerprints) == 1

    def test_rolling_repair_heals_a_partial_push(self, cassandra):
        events = EventBus()
        seen = []
        events.subscribe(lambda e: seen.append(e))
        adapter = self.make_adapter(cassandra, events=events)
        adapter.cluster.refuse_pushes(1)
        adapter.apply_config(
            cassandra.default_configuration().with_updates(concurrent_writes=96)
        )
        report = adapter.verify_config()
        assert report.drifted_nodes == (1,)
        repair = adapter.repair_config(report.drifted_nodes, read_ratio=0.5)
        assert repair.applied_nodes == (1,)
        assert repair.failed_nodes == ()
        assert repair.duration_s > 0          # the repair charges a transient
        assert not adapter.verify_config().has_drift
        topics = [e.topic for e in seen]
        assert "actuate.repair" in topics

    def test_instant_repair_is_free(self, cassandra):
        adapter = self.make_adapter(cassandra)
        adapter.cluster.refuse_pushes(2)
        adapter.apply_config(
            cassandra.default_configuration().with_updates(concurrent_writes=64)
        )
        repair = adapter.repair_config((2,), read_ratio=0.5, rolling=False)
        assert repair.duration_s == 0.0
        assert not adapter.verify_config().has_drift

    def test_refused_repair_stays_failed(self, cassandra):
        adapter = self.make_adapter(cassandra)
        adapter.cluster.refuse_pushes(1, 2)   # push + first repair both fail
        adapter.apply_config(
            cassandra.default_configuration().with_updates(concurrent_writes=96)
        )
        repair = adapter.repair_config((1,), read_ratio=0.5)
        assert repair.failed_nodes == (1,)
        assert adapter.verify_config().drifted_nodes == (1,)

    def test_repair_rejects_protocol_misuse(self, cassandra):
        adapter = self.make_adapter(cassandra)
        with pytest.raises(ActuationError, match="at least one node"):
            adapter.repair_config((), read_ratio=0.5)
        with pytest.raises(ActuationError, match="outside the ring"):
            adapter.repair_config((7,), read_ratio=0.5)
        single = self.make_adapter(cassandra, n_nodes=1)
        with pytest.raises(ActuationError, match="single server"):
            single.repair_config((0,), read_ratio=0.5)


# ---------------------------------------------------------------------------
# Fault plan: the new kinds
# ---------------------------------------------------------------------------


class TestActuationFaultKinds:
    def test_schedules_validate(self):
        with pytest.raises(FaultError):
            ActuationFault(window=-1, node=0).validate()
        with pytest.raises(FaultError, match="repairs_blocked"):
            ActuationFault(window=0, node=0, repairs_blocked=-1).validate()
        with pytest.raises(FaultError, match="after the crash"):
            StaleRecovery(window=3, node=0, recover_window=3).validate()

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan(
            actuation_faults=(
                ActuationFault(window=2, node=1, repairs_blocked=1),
            ),
            stale_recoveries=(
                StaleRecovery(window=1, node=2, recover_window=4),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert not plan.is_empty
        assert plan.max_node == 2

    def test_validate_checks_node_range(self):
        plan = FaultPlan(
            actuation_faults=(ActuationFault(window=0, node=5),)
        )
        plan.validate()                       # no ring size: schedule-only
        with pytest.raises(FaultError, match="node 5"):
            plan.validate(n_nodes=3)

    def test_generated_plans_include_actuation_faults(self):
        plan = FaultPlan.generate(
            seed=11, n_windows=40, n_nodes=3,
            crash_probability=0.0, slowdown_probability=0.0,
            search_fault_probability=0.0, push_fault_probability=0.0,
            actuation_fault_probability=0.4, stale_recovery_probability=0.3,
        )
        assert plan.actuation_faults and plan.stale_recoveries
        plan.validate(n_nodes=3)
        for stale in plan.stale_recoveries:
            assert stale.recover_window < 40

    def test_zero_probability_draws_nothing(self):
        plan = FaultPlan.generate(
            seed=11, n_windows=40, n_nodes=3,
            crash_probability=0.0, slowdown_probability=0.0,
            search_fault_probability=0.0, push_fault_probability=0.0,
        )
        assert plan.actuation_faults == () and plan.stale_recoveries == ()


class TestInjectorActuation:
    def test_partial_push_arms_refusals(self, cassandra):
        events = EventBus()
        seen = []
        events.subscribe(lambda e: seen.append(e))
        cluster = make_cluster(cassandra)
        plan = FaultPlan(
            actuation_faults=(
                ActuationFault(window=0, node=1, repairs_blocked=1),
            )
        )
        FaultInjector(plan, events=events).begin_window(0, cluster)
        topics = [e.topic for e in seen]
        assert "fault.actuation.partial_push" in topics
        target = cassandra.default_configuration().with_updates(
            concurrent_writes=96
        )
        # 1 push + 1 blocked repair = 2 armed refusals.
        assert not cluster.apply_node_config(1, target)
        assert not cluster.apply_node_config(1, target)
        assert cluster.apply_node_config(1, target)

    def test_stale_recovery_crashes_then_rejoins_stale(self, cassandra):
        events = EventBus()
        seen = []
        events.subscribe(lambda e: seen.append(e))
        cluster = make_cluster(cassandra, events=events)
        plan = FaultPlan(
            stale_recoveries=(
                StaleRecovery(window=0, node=2, recover_window=3),
            )
        )
        injector = FaultInjector(plan, events=events)
        injector.begin_window(0, cluster)
        assert cluster.down_node_indices == [2]
        target = cassandra.default_configuration().with_updates(
            concurrent_writes=96
        )
        cluster.apply_config(target)          # misses the isolated node
        injector.begin_window(3, cluster)
        topics = [e.topic for e in seen]
        assert "fault.actuation.stale_crash" in topics
        assert "fault.actuation.stale_recovery" in topics
        assert "cluster.node_recovered" in topics
        assert cluster.describe_drift().drifted_nodes == (2,)

    def test_node_faults_need_a_cluster(self):
        plan = FaultPlan(
            actuation_faults=(ActuationFault(window=0, node=1),)
        )
        with pytest.raises(FaultError, match="no multi-node cluster"):
            FaultInjector(plan).begin_window(0, cluster=None)


# ---------------------------------------------------------------------------
# Plan validation threads the ring size (satellite fix)
# ---------------------------------------------------------------------------


class TestRingSizeValidation:
    def test_session_rejects_out_of_range_plan(self, cassandra):
        adapter = SimulatedDatastoreAdapter(cassandra, n_nodes=3, seed=0)
        plan = FaultPlan(
            actuation_faults=(ActuationFault(window=0, node=7),)
        )
        with pytest.raises(FaultError, match="node 7"):
            TenantSession(
                cassandra, None, adapter, OraclePolicy(), fault_plan=plan
            )

    def test_spec_rejects_actuation_faults_on_single_node(self):
        with pytest.raises(Exception, match="multi-node"):
            TenantSpec(
                tenant_id="solo",
                rr_series=[0.5],
                base_workload=WORKLOAD,
                n_nodes=1,
                fault_plan=FaultPlan(
                    actuation_faults=(ActuationFault(window=0, node=0),)
                ),
            )


# ---------------------------------------------------------------------------
# ReconcileSpec + DriftReconciler units
# ---------------------------------------------------------------------------


class TestReconcileSpec:
    def test_validation(self):
        with pytest.raises(GuardError, match="span"):
            ReconcileSpec(span=0)
        with pytest.raises(GuardError, match="max_repairs"):
            ReconcileSpec(max_repairs=-1)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(GuardError, match="max_repares"):
            ReconcileSpec.from_dict({"max_repares": 2})
        spec = ReconcileSpec.from_dict({"max_repairs": 2, "span": 4})
        assert spec == ReconcileSpec(max_repairs=2, span=4)

    def test_repair_budget_rolls(self):
        reconciler = DriftReconciler(
            "t", spec=ReconcileSpec(max_repairs=2, span=4)
        )
        assert reconciler.allow_repair(0)
        reconciler._repairs.extend([0, 1])
        assert not reconciler.allow_repair(2)   # both inside the span
        assert reconciler.allow_repair(5)       # window 0 aged out

    def test_disabled_reconciler_never_reads_back(self, cassandra):
        class ExplodingAdapter:
            def verify_config(self):
                raise AssertionError("disabled reconciler must not verify")

        reconciler = DriftReconciler("t", spec=ReconcileSpec(enabled=False))
        outcome = reconciler.reconcile(0, ExplodingAdapter(), 0.5)
        assert not outcome.drift_detected and not outcome.quarantined


# ---------------------------------------------------------------------------
# Telemetry quarantine
# ---------------------------------------------------------------------------


def sealed(index, throughput, quarantined=False):
    return ControllerEvent(
        window_index=index,
        read_ratio=0.5,
        reconfigured=False,
        configuration=None,
        mean_throughput=throughput,
        quarantined=quarantined,
    )


class TestQuarantine:
    def test_guard_skips_quarantined_windows(self):
        guard = TenantGuard(
            "t", slo=SloSpec(throughput_floor=50_000, window_span=8)
        )
        guard.observe_window(sealed(0, 1.0, quarantined=True))
        assert guard.slo.windows_scored == 0    # neither burns nor recovers
        guard.observe_window(sealed(1, 1.0))
        assert guard.slo.windows_scored == 1

    def test_canary_keeps_pending_verdict(self, cassandra):
        class CanaryRafiki(RegimeRafiki):
            def predicted_mean_std(self, read_ratio, config):
                return 100_000.0, 0.0

        adapter = SimulatedDatastoreAdapter(cassandra, n_nodes=3, seed=0)
        session = TenantSession(
            cassandra, CanaryRafiki(cassandra), adapter, OraclePolicy(),
            canary_margin=0.1,
        )
        target = cassandra.default_configuration()
        session._pending_canary = target
        from repro.middleware.session import WindowState

        ws = WindowState(index=3, read_ratio=0.5, quarantined=True)
        ws.mean_throughput = 1.0   # would fail any canary if it were judged
        session._phase_canary(ws)
        assert session._pending_canary is target   # verdict deferred
        assert ws.rolled_back is False


# ---------------------------------------------------------------------------
# End-to-end: the session's reconcile phase
# ---------------------------------------------------------------------------


class TestSessionReconcile:
    def test_partial_push_repaired_in_its_own_window(self):
        rr = [0.3, 0.3, 0.7, 0.7, 0.7, 0.7]   # regime flip pushes at window 2
        plan = FaultPlan(
            actuation_faults=(ActuationFault(window=2, node=1),)
        )
        _, run, trace = run_campaign(rr, plan, ReconcileSpec())
        assert windows_of(trace, "actuate.drift") == [2]
        assert windows_of(trace, "actuate.reconciled") == [2]
        assert windows_of(trace, "actuate.quarantine") == [2]
        assert [e.window_index for e in run.events if e.quarantined] == [2]
        assert not any(e.degraded for e in run.events)

    def test_stale_rejoin_detected_at_the_rejoin_window(self):
        rr = [0.3, 0.3, 0.3, 0.7, 0.7, 0.7]   # push at window 3, node 2 down
        plan = FaultPlan(
            stale_recoveries=(
                StaleRecovery(window=1, node=2, recover_window=4),
            )
        )
        _, run, trace = run_campaign(rr, plan, ReconcileSpec())
        assert windows_of(trace, "actuate.drift") == [4]
        assert windows_of(trace, "actuate.reconciled") == [4]
        assert any(t == "tenant.t.cluster.node_recovered" for t, _ in trace)
        assert [e.window_index for e in run.events if e.quarantined] == [4]

    def test_exhausted_budget_degrades_and_trips_the_push_breaker(self):
        rr = [0.3, 0.3, 0.7, 0.7, 0.7]
        plan = FaultPlan(
            actuation_faults=(
                ActuationFault(window=2, node=1, repairs_blocked=5),
            )
        )
        scheduler, run, trace = run_campaign(
            rr, plan, ReconcileSpec(max_repairs=1, span=16), guard=GuardSpec()
        )
        drifts = windows_of(trace, "actuate.drift")
        assert drifts == [2, 3, 4]            # unrepaired drift persists
        assert windows_of(trace, "actuate.repair_failed") == [2]
        assert windows_of(trace, "actuate.repair_blocked") == [3, 4]
        degraded = [e.window_index for e in run.events if e.degraded]
        assert degraded == [2, 3, 4]
        reasons = [
            dict(p).get("reason")
            for t, p in trace
            if t == "tenant.t.controller.degraded"
        ]
        assert set(reasons) == {"drift"}
        assert scheduler.session("t").guard.push_breaker.state == OPEN

    def test_observe_only_mode_quarantines_without_degrading(self):
        rr = [0.3, 0.3, 0.7, 0.7]
        plan = FaultPlan(
            actuation_faults=(
                ActuationFault(window=2, node=1, repairs_blocked=5),
            )
        )
        scheduler, run, trace = run_campaign(
            rr, plan, ReconcileSpec(max_repairs=0, escalate=False),
            guard=GuardSpec(),
        )
        assert windows_of(trace, "actuate.drift") == [2, 3]
        assert not any(e.degraded for e in run.events)
        assert [e.window_index for e in run.events if e.quarantined] == [2, 3]
        assert scheduler.session("t").guard.push_breaker.state == CLOSED

    def test_sharded_serve_reproduces_the_drift_sequence(self):
        rr = [0.3, 0.3, 0.7, 0.7, 0.3, 0.3]
        plan = FaultPlan(
            actuation_faults=(ActuationFault(window=2, node=1),),
            stale_recoveries=(
                StaleRecovery(window=3, node=2, recover_window=5),
            ),
        )
        spec = ReconcileSpec(max_repairs=2, span=8)
        _, serial_run, serial_trace = run_campaign(rr, plan, spec)
        _, sharded_run, sharded_trace = run_campaign(
            rr, plan, spec, workers=2
        )
        assert serial_trace == sharded_trace
        assert [
            (e.window_index, e.mean_throughput, e.degraded, e.quarantined)
            for e in serial_run.events
        ] == [
            (e.window_index, e.mean_throughput, e.degraded, e.quarantined)
            for e in sharded_run.events
        ]


# ---------------------------------------------------------------------------
# Manifest stanza
# ---------------------------------------------------------------------------


class TestManifestReconcile:
    def test_stanza_builds_the_spec(self):
        manifest = parse_manifest(
            {
                "defaults": {"hours": 0.05, "window_seconds": 60},
                "tenants": [
                    {
                        "id": "a",
                        "nodes": 3,
                        "reconcile": {"max_repairs": 2, "span": 6},
                    }
                ],
            }
        )
        (spec,) = specs_from_manifest(manifest)
        assert spec.reconcile == ReconcileSpec(max_repairs=2, span=6)

    def test_defaults_stanza_merges_keywise(self):
        manifest = parse_manifest(
            {
                "defaults": {
                    "hours": 0.05,
                    "window_seconds": 60,
                    "reconcile": {"span": 4},
                },
                "tenants": [
                    {"id": "a", "reconcile": {"max_repairs": 1}},
                    {"id": "b"},
                ],
            }
        )
        first, second = specs_from_manifest(manifest)
        assert first.reconcile == ReconcileSpec(max_repairs=1, span=4)
        assert second.reconcile == ReconcileSpec(span=4)

    def test_absent_stanza_keeps_blind_actuation(self):
        manifest = parse_manifest(
            {"defaults": {"hours": 0.05}, "tenants": [{"id": "a"}]}
        )
        (spec,) = specs_from_manifest(manifest)
        assert spec.reconcile is None

    def test_unknown_reconcile_key_rejected(self):
        with pytest.raises(PersistenceError, match=r"\[reconcile\]"):
            parse_manifest(
                {"tenants": [{"id": "a", "reconcile": {"spam": 2}}]}
            )
        with pytest.raises(PersistenceError, match=r"\[defaults.reconcile\]"):
            parse_manifest(
                {
                    "defaults": {"reconcile": {"budget": 1}},
                    "tenants": [{"id": "a"}],
                }
            )


# ---------------------------------------------------------------------------
# Properties (satellite): convergence + mixed-ring throughput bounds
# ---------------------------------------------------------------------------


class TestReconcilerConvergence:
    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_drift_is_repaired_or_degraded_never_silent(self, seed):
        n_windows = 8
        rr = ([0.3, 0.3, 0.7, 0.7] * 2)[:n_windows]  # pushes every 2 windows
        plan = FaultPlan.generate(
            seed=seed, n_windows=n_windows, n_nodes=3,
            crash_probability=0.0, slowdown_probability=0.0,
            search_fault_probability=0.0, push_fault_probability=0.0,
            actuation_fault_probability=0.5, stale_recovery_probability=0.3,
        )
        _, run, trace = run_campaign(rr, plan, ReconcileSpec(), seed=seed)
        drifts = windows_of(trace, "actuate.drift")
        repaired = windows_of(trace, "actuate.reconciled")
        failed = windows_of(trace, "actuate.repair_failed")
        blocked = windows_of(trace, "actuate.repair_blocked")
        # Every detection resolves exactly one way — repaired or escalated.
        assert sorted(repaired + failed + blocked) == drifts
        assert blocked == []                   # uncapped budget never blocks
        assert windows_of(trace, "actuate.quarantine") == drifts
        # Sealed telemetry is flagged on exactly the drifted windows.
        assert [e.window_index for e in run.events if e.quarantined] == drifts
        # Escalation (degraded mode) on exactly the unrepaired windows.
        # Every window is re-verified, so drift surviving a failed repair
        # re-surfaces next window — it can never persist unobserved.
        assert [e.window_index for e in run.events if e.degraded] == failed


class TestMixedRingThroughputBounds:
    @given(
        writes_a=st.sampled_from([16, 32, 64, 96]),
        writes_b=st.sampled_from([16, 32, 64, 96]),
        mask=st.tuples(st.booleans(), st.booleans(), st.booleans()),
        read_ratio=st.sampled_from([0.2, 0.5, 0.8]),
    )
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mixed_ring_bounded_by_uniform_rings(
        self, writes_a, writes_b, mask, read_ratio
    ):
        cassandra = CassandraLike()
        config_a = cassandra.default_configuration().with_updates(
            concurrent_writes=writes_a
        )
        config_b = cassandra.default_configuration().with_updates(
            concurrent_writes=writes_b
        )

        def uniform(config):
            ring = make_cluster(cassandra)
            ring.apply_config(config)
            return ring.sustainable_throughput(read_ratio)

        mixed_ring = make_cluster(cassandra)
        mixed_ring.apply_config(config_a)
        for node, use_b in enumerate(mask):
            if use_b:
                mixed_ring.apply_node_config(node, config_b)
        mixed = mixed_ring.sustainable_throughput(read_ratio)
        lo = min(uniform(config_a), uniform(config_b))
        hi = max(uniform(config_a), uniform(config_b))
        assert lo - 1e-6 <= mixed <= hi + 1e-6
