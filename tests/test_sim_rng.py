import numpy as np

from repro.sim.rng import SeedSequence, derive_rng


class TestSeedSequence:
    def test_same_seed_same_stream(self):
        a = SeedSequence(7).stream("x")
        b = SeedSequence(7).stream("x")
        assert a.integers(1000) == b.integers(1000)

    def test_different_names_differ(self):
        seeds = SeedSequence(7)
        a = seeds.stream("alpha")
        b = seeds.stream("beta")
        assert list(a.integers(1000, size=8)) != list(b.integers(1000, size=8))

    def test_repeated_name_gives_new_stream(self):
        seeds = SeedSequence(7)
        a = seeds.stream("x")
        b = seeds.stream("x")
        assert list(a.integers(1000, size=8)) != list(b.integers(1000, size=8))

    def test_different_root_seeds_differ(self):
        a = SeedSequence(1).stream("x")
        b = SeedSequence(2).stream("x")
        assert list(a.integers(1000, size=8)) != list(b.integers(1000, size=8))

    def test_child_is_deterministic(self):
        a = SeedSequence(3).child("node").root_seed
        b = SeedSequence(3).child("node").root_seed
        assert a == b

    def test_root_seed_property(self):
        assert SeedSequence(42).root_seed == 42


class TestDeriveRng:
    def test_none_gives_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        assert derive_rng(5).integers(10**6) == derive_rng(5).integers(10**6)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert derive_rng(gen) is gen
