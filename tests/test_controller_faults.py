"""Self-healing controller: retry, degraded mode, canary rollback.

Includes the PR's acceptance scenario: a seeded FaultPlan crashing one
of four nodes mid-run must leave the controller able to finish the trace
end-to-end, emit ``controller.rollback`` when the canary undershoots,
and reproduce the identical event sequence when replayed.
"""

import pytest

from repro.core.controller import OnlineController, RetryPolicy
from repro.core.search import OptimizationResult
from repro.datastore import CassandraLike
from repro.errors import SearchError
from repro.faults import FaultPlan, NodeCrash, TransientFault
from repro.runtime import EventBus
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=500_000)


class FakeRafiki:
    """Two-regime recommender with a constant surrogate prediction."""

    def __init__(self, datastore, predicted=50_000.0, std=0.0):
        self.datastore = datastore
        self.predicted = predicted
        self.std = std
        self.calls = []

    def _config_for(self, read_ratio):
        if read_ratio >= 0.5:
            return self.datastore.space.configuration(
                compaction_method="LeveledCompactionStrategy",
                file_cache_size_in_mb=2048,
            )
        return self.datastore.default_configuration()

    def recommend(self, read_ratio, use_cache=True):
        self.calls.append(read_ratio)
        return OptimizationResult(
            configuration=self._config_for(read_ratio),
            predicted_throughput=self.predicted,
            evaluations=1,
            equivalent_wall_seconds=0.0,
            strategy="fake",
        )

    def predicted_mean_std(self, read_ratio, config):
        return self.predicted, self.std


def capture(bus, prefix):
    events = []
    bus.subscribe(lambda e: events.append(e), topic=prefix)
    return events


class TestRetryAndDegraded:
    def test_transient_search_fault_healed_by_retry(self, cassandra, workload):
        plan = FaultPlan(
            transient_faults=(TransientFault(kind="search", window=0, failures=1),)
        )
        bus = EventBus()
        retries = capture(bus, "controller.retry")
        ctrl = OnlineController(
            cassandra,
            FakeRafiki(cassandra),
            workload,
            window_seconds=60,
            fault_plan=plan,
            events=bus,
            retry=RetryPolicy(max_attempts=3, backoff_s=1.0),
        )
        run = ctrl.run([0.9, 0.9], load=False)
        assert len(retries) == 1
        assert run.events[0].reconfigured
        assert not run.events[0].degraded

    def test_exhausted_search_budget_degrades_to_default(self, cassandra, workload):
        plan = FaultPlan(
            transient_faults=(TransientFault(kind="search", window=0, failures=9),)
        )
        bus = EventBus()
        degraded = capture(bus, "controller.degraded")
        ctrl = OnlineController(
            cassandra,
            FakeRafiki(cassandra),
            workload,
            window_seconds=60,
            fault_plan=plan,
            events=bus,
            retry=RetryPolicy(max_attempts=2, backoff_s=1.0),
        )
        run = ctrl.run([0.9, 0.9], load=False)
        assert run.events[0].degraded
        assert run.events[0].configuration == cassandra.default_configuration()
        assert degraded and degraded[0].payload["reason"] == "search"
        # The fault clears after window 0: the controller recovers on its
        # own and reconfigures at the next decision point.
        assert run.events[1].reconfigured

    def test_exhausted_push_budget_keeps_current_config(self, cassandra, workload):
        plan = FaultPlan(
            transient_faults=(TransientFault(kind="push", window=0, failures=9),)
        )
        bus = EventBus()
        degraded = capture(bus, "controller.degraded")
        ctrl = OnlineController(
            cassandra,
            FakeRafiki(cassandra),
            workload,
            window_seconds=60,
            fault_plan=plan,
            events=bus,
            retry=RetryPolicy(max_attempts=2, backoff_s=1.0),
        )
        run = ctrl.run([0.9], load=False)
        assert run.events[0].degraded
        assert not run.events[0].reconfigured
        assert run.events[0].configuration == cassandra.default_configuration()
        assert degraded[0].payload["reason"] == "push"

    def test_retry_backoff_charged_against_window(self, cassandra, workload):
        plan = FaultPlan(
            transient_faults=(TransientFault(kind="search", window=0, failures=2),)
        )
        flaky = OnlineController(
            cassandra,
            FakeRafiki(cassandra),
            workload,
            window_seconds=60,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, backoff_s=10.0),
            seed=7,
        ).run([0.9], load=False)
        clean = OnlineController(
            cassandra,
            FakeRafiki(cassandra),
            workload,
            window_seconds=60,
            seed=7,
        ).run([0.9], load=False)
        assert flaky.events[0].mean_throughput < clean.events[0].mean_throughput

    def test_retry_policy_validation(self):
        with pytest.raises(SearchError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SearchError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(SearchError):
            RetryPolicy(backoff_s=-1.0)

    def test_node_faults_require_multi_node_cluster(self, cassandra, workload):
        plan = FaultPlan(node_crashes=(NodeCrash(window=0, node=0),))
        with pytest.raises(SearchError):
            OnlineController(
                cassandra, None, workload, fault_plan=plan, n_nodes=1
            )

    def test_plan_node_range_checked(self, cassandra, workload):
        plan = FaultPlan(node_crashes=(NodeCrash(window=0, node=7),))
        with pytest.raises(SearchError):
            OnlineController(
                cassandra, None, workload, fault_plan=plan, n_nodes=4
            )


class TestCanaryRollback:
    def make_controller(self, cassandra, workload, bus, rafiki=None):
        return OnlineController(
            cassandra,
            rafiki or FakeRafiki(cassandra),
            workload,
            window_seconds=60,
            rr_change_threshold=0.1,
            fault_plan=FaultPlan(
                node_crashes=(NodeCrash(window=4, node=1, recover_window=6),)
            ),
            events=bus,
            n_nodes=4,
            replication_factor=2,
            canary_margin=0.05,
            canary_std_factor=2.0,
            seed=7,
        )

    SERIES = [0.2, 0.2, 0.2, 0.2, 0.9, 0.9, 0.9, 0.9]

    def test_acceptance_scenario_rolls_back_and_completes(self, cassandra, workload):
        """Crash 1 of 4 nodes in the same window as a reconfiguration:
        the canary sees the throughput collapse, blames the new config,
        reverts it, and the run still completes end to end."""
        bus = EventBus()
        rollbacks = capture(bus, "controller.rollback")
        faults = capture(bus, "fault.injected")
        run = self.make_controller(cassandra, workload, bus).run(
            self.SERIES, load=False
        )
        assert len(run.events) == len(self.SERIES)
        assert len(rollbacks) >= 1
        assert run.rollback_count >= 1
        assert any(f.payload["kind"] == "node-crash" for f in faults)
        rolled = next(e for e in run.events if e.rolled_back)
        # The rollback restored the pre-push configuration.
        assert rolled.configuration == cassandra.default_configuration()

    def test_event_sequence_reproducible(self, cassandra, workload):
        def one_run():
            bus = EventBus()
            seen = []
            bus.subscribe(
                lambda e: seen.append((e.topic, e.message, tuple(sorted(e.payload.items()))))
            )
            run = self.make_controller(cassandra, workload, bus).run(
                self.SERIES, load=False
            )
            return seen, [
                (e.reconfigured, e.rolled_back, e.degraded, e.mean_throughput)
                for e in run.events
            ]

        first, second = one_run(), one_run()
        assert first == second

    def test_healthy_canary_does_not_roll_back(self, cassandra, workload):
        """Same trace, no faults: the push survives its canary."""
        bus = EventBus()
        rollbacks = capture(bus, "controller.rollback")
        ctrl = OnlineController(
            cassandra,
            FakeRafiki(cassandra),
            workload,
            window_seconds=60,
            rr_change_threshold=0.1,
            events=bus,
            n_nodes=4,
            replication_factor=2,
            canary_margin=0.05,
            seed=7,
        )
        run = ctrl.run(self.SERIES, load=False)
        assert rollbacks == []
        assert run.rollback_count == 0
        assert run.reconfiguration_count >= 1

    def test_canary_requires_capable_rafiki(self, cassandra, workload):
        class BareRafiki:
            def recommend(self, rr, use_cache=True):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(SearchError):
            OnlineController(
                cassandra, BareRafiki(), workload, canary_margin=0.1
            )

    def test_canary_margin_validated(self, cassandra, workload):
        with pytest.raises(SearchError):
            OnlineController(
                cassandra, FakeRafiki(cassandra), workload, canary_margin=1.5
            )

    def test_uncertain_surrogate_widens_tolerance(self, cassandra, workload):
        """A huge ensemble spread should suppress the rollback that a
        confident surrogate would have triggered."""
        bus = EventBus()
        rollbacks = capture(bus, "controller.rollback")
        uncertain = FakeRafiki(cassandra, std=1e9)
        run = self.make_controller(cassandra, workload, bus, rafiki=uncertain).run(
            self.SERIES, load=False
        )
        assert rollbacks == []
        assert run.rollback_count == 0


class TestMultiNodeFaultFreeParity:
    def test_multi_node_run_completes_without_faults(self, cassandra, workload):
        run = OnlineController(
            cassandra,
            FakeRafiki(cassandra),
            workload,
            window_seconds=60,
            n_nodes=3,
            replication_factor=2,
            seed=7,
        ).run([0.2, 0.9, 0.9], load=False)
        assert len(run.events) == 3
        assert all(e.mean_throughput > 0 for e in run.events)
        assert run.degraded_count == 0
