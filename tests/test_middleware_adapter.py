"""Actuation layer: provision parity, rolling restarts, lifecycle events."""

import pytest

from repro.datastore import CassandraLike
from repro.datastore.adapter import SimulatedDatastoreAdapter
from repro.errors import DatastoreError
from repro.runtime import EventBus
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=100_000)


class TestProvisionParity:
    def test_single_node_matches_direct_construction(self, cassandra, workload):
        """The adapter mints exactly the server _make_server used to."""
        adapter = SimulatedDatastoreAdapter(
            cassandra, profile=workload.to_profile(), seed=11
        )
        adapter.provision()
        via_adapter = adapter.run(0.7, 30.0, dt=1.0)

        direct = cassandra.new_analytic_instance(
            cassandra.default_configuration(),
            profile=workload.to_profile(),
            seed=11,
        )
        reference = direct.run(0.7, 30.0, dt=1.0)
        assert [s.throughput for s in via_adapter] == [
            s.throughput for s in reference
        ]

    def test_multi_node_provisions_cluster(self, cassandra, workload):
        adapter = SimulatedDatastoreAdapter(
            cassandra,
            n_nodes=3,
            replication_factor=2,
            profile=workload.to_profile(),
            seed=4,
        )
        adapter.provision()
        assert adapter.cluster is not None
        assert adapter.cluster.n_nodes == 3
        steps = adapter.run(0.5, 10.0, dt=1.0)
        assert all(s.throughput > 0 for s in steps)

    def test_run_before_provision_rejected(self, cassandra):
        adapter = SimulatedDatastoreAdapter(cassandra)
        with pytest.raises(DatastoreError):
            adapter.run(0.5, 10.0)
        with pytest.raises(DatastoreError):
            adapter.apply_config(cassandra.default_configuration())

    def test_bad_construction_rejected(self, cassandra):
        with pytest.raises(DatastoreError):
            SimulatedDatastoreAdapter(cassandra, n_nodes=0)
        with pytest.raises(DatastoreError):
            SimulatedDatastoreAdapter(cassandra, restart_seconds_per_node=-1.0)


class TestApplyConfig:
    def test_apply_config_updates_server_and_state(self, cassandra, workload):
        adapter = SimulatedDatastoreAdapter(
            cassandra, n_nodes=2, profile=workload.to_profile(), seed=0
        )
        adapter.provision()
        target = cassandra.space.configuration(
            compaction_method="LeveledCompactionStrategy"
        )
        adapter.apply_config(target)
        assert adapter.config == target
        assert adapter.cluster.config == target


class TestRollingRestart:
    def _target(self, cassandra):
        return cassandra.space.configuration(file_cache_size_in_mb=2048)

    def test_cluster_restart_charges_capacity_loss(self, cassandra, workload):
        adapter = SimulatedDatastoreAdapter(
            cassandra,
            n_nodes=3,
            profile=workload.to_profile(),
            seed=2,
            restart_seconds_per_node=5.0,
        )
        adapter.provision()
        report = adapter.rolling_restart(self._target(cassandra), read_ratio=0.5)
        assert report.nodes_restarted == 3
        assert report.skipped_nodes == ()
        assert report.duration_s == pytest.approx(15.0)
        assert report.ops_lost > 0        # a degraded ring serves less
        assert report.ops_served > 0      # ... but it does keep serving
        assert len(report.steps) == 15
        assert adapter.config == self._target(cassandra)
        assert adapter.cluster.down_node_indices == []  # everyone came back

    def test_already_down_node_is_skipped_not_resurrected(
        self, cassandra, workload
    ):
        adapter = SimulatedDatastoreAdapter(
            cassandra,
            n_nodes=3,
            profile=workload.to_profile(),
            seed=2,
            restart_seconds_per_node=5.0,
        )
        adapter.provision()
        adapter.cluster.fail_node(1)
        report = adapter.rolling_restart(self._target(cassandra), read_ratio=0.5)
        assert report.nodes_restarted == 2
        assert report.skipped_nodes == (1,)
        assert adapter.cluster.down_node_indices == [1]  # still down

    def test_single_node_restart_is_full_downtime(self, cassandra, workload):
        adapter = SimulatedDatastoreAdapter(
            cassandra,
            profile=workload.to_profile(),
            seed=2,
            restart_seconds_per_node=10.0,
        )
        adapter.provision()
        report = adapter.rolling_restart(self._target(cassandra), read_ratio=0.5)
        assert report.nodes_restarted == 1
        assert report.steps == []
        assert report.ops_served == 0.0
        assert report.duration_s == pytest.approx(10.0)
        assert report.ops_lost > 0
        assert adapter.config == self._target(cassandra)

    def test_deterministic_given_seed(self, cassandra, workload):
        def one_run():
            adapter = SimulatedDatastoreAdapter(
                cassandra,
                n_nodes=3,
                profile=workload.to_profile(),
                seed=9,
                restart_seconds_per_node=5.0,
            )
            adapter.provision()
            return adapter.rolling_restart(self._target(cassandra), 0.6)

        a, b = one_run(), one_run()
        assert a.ops_lost == b.ops_lost
        assert a.ops_served == b.ops_served
        assert [s.throughput for s in a.steps] == [s.throughput for s in b.steps]


class TestLifecycleEvents:
    def test_actuation_topics_published(self, cassandra, workload):
        events = EventBus()
        seen = []
        events.subscribe(seen.append, topic="actuate")
        adapter = SimulatedDatastoreAdapter(
            cassandra,
            n_nodes=2,
            profile=workload.to_profile(),
            seed=0,
            restart_seconds_per_node=2.0,
            events=events,
        )
        adapter.provision()
        adapter.rolling_restart(
            cassandra.space.configuration(file_cache_size_in_mb=2048), 0.5
        )
        adapter.teardown()
        assert [e.topic for e in seen] == [
            "actuate.provision",
            "actuate.rolling_restart",
            "actuate.teardown",
        ]
        restart = seen[1]
        assert restart.payload["nodes_restarted"] == 2
        assert restart.payload["ops_lost"] >= 0
