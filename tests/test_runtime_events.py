"""EventBus: topic matching, unsubscribe, legacy callback adapter."""

from repro.runtime import EventBus, callback_subscriber


class TestEventBus:
    def test_publish_returns_event(self):
        bus = EventBus()
        event = bus.publish("collect.sample", "sample 1/10", done=1, total=10)
        assert event.topic == "collect.sample"
        assert event.payload == {"done": 1, "total": 10}

    def test_subscribe_all(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish("a", "x")
        bus.publish("b.c", "y")
        assert [e.topic for e in seen] == ["a", "b.c"]

    def test_topic_prefix_matching(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="collect")
        bus.publish("collect", "root")
        bus.publish("collect.sample", "child")
        bus.publish("collection", "not a subtopic")
        bus.publish("anova.parameter", "other")
        assert [e.message for e in seen] == ["root", "child"]

    def test_exact_topic(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="pipeline.stage")
        bus.publish("pipeline.stage", "collecting")
        bus.publish("pipeline", "ignored")
        assert len(seen) == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.publish("a")
        unsubscribe()
        unsubscribe()  # idempotent
        bus.publish("b")
        assert len(seen) == 1

    def test_published_count(self):
        bus = EventBus()
        bus.publish("a")
        bus.publish("b")
        assert bus.published_count == 2

    def test_str_rendering(self):
        bus = EventBus()
        assert str(bus.publish("t", "msg")) == "[t] msg"
        assert str(bus.publish("t")) == "[t]"


class TestCallbackAdapter:
    def test_legacy_callback_sees_messages(self):
        messages = []
        bus = EventBus()
        bus.subscribe(callback_subscriber(messages.append))
        bus.publish("pipeline.stage", "training surrogate model")
        bus.publish("bare.topic")  # no message -> topic as fallback
        assert messages == ["training surrogate model", "bare.topic"]
