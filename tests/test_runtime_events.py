"""EventBus: topic matching, unsubscribe, scoping, legacy callback adapter."""

import pytest

from repro.runtime import EventBus, ScopedEventBus, callback_subscriber


class TestEventBus:
    def test_publish_returns_event(self):
        bus = EventBus()
        event = bus.publish("collect.sample", "sample 1/10", done=1, total=10)
        assert event.topic == "collect.sample"
        assert event.payload == {"done": 1, "total": 10}

    def test_subscribe_all(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish("a", "x")
        bus.publish("b.c", "y")
        assert [e.topic for e in seen] == ["a", "b.c"]

    def test_topic_prefix_matching(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="collect")
        bus.publish("collect", "root")
        bus.publish("collect.sample", "child")
        bus.publish("collection", "not a subtopic")
        bus.publish("anova.parameter", "other")
        assert [e.message for e in seen] == ["root", "child"]

    def test_exact_topic(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="pipeline.stage")
        bus.publish("pipeline.stage", "collecting")
        bus.publish("pipeline", "ignored")
        assert len(seen) == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(seen.append)
        bus.publish("a")
        unsubscribe()
        unsubscribe()  # idempotent
        bus.publish("b")
        assert len(seen) == 1

    def test_published_count(self):
        bus = EventBus()
        bus.publish("a")
        bus.publish("b")
        assert bus.published_count == 2

    def test_str_rendering(self):
        bus = EventBus()
        assert str(bus.publish("t", "msg")) == "[t] msg"
        assert str(bus.publish("t")) == "[t]"


class TestScopedEventBus:
    def test_publish_is_prefixed(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        scoped = bus.scoped("tenant.3")
        event = scoped.publish("controller.retry", "again", attempt=1)
        assert event.topic == "tenant.3.controller.retry"
        assert [e.topic for e in seen] == ["tenant.3.controller.retry"]
        assert event.payload == {"attempt": 1}

    def test_empty_topic_publishes_the_prefix(self):
        bus = EventBus()
        assert bus.scoped("tenant.a").publish("").topic == "tenant.a"

    def test_subscribe_sees_only_own_namespace(self):
        bus = EventBus()
        seen = []
        bus.scoped("tenant.a").subscribe(seen.append, topic="controller")
        bus.publish("tenant.a.controller.rollback")
        bus.publish("tenant.b.controller.rollback")
        bus.publish("tenant.a.fault.crash")
        assert [e.topic for e in seen] == ["tenant.a.controller.rollback"]

    def test_subscribe_all_scopes_to_prefix(self):
        bus = EventBus()
        seen = []
        bus.scoped("tenant.a").subscribe(seen.append)
        bus.publish("tenant.a.x")
        bus.publish("tenant.b.x")
        assert [e.topic for e in seen] == ["tenant.a.x"]

    def test_nested_scopes_flatten(self):
        bus = EventBus()
        scoped = bus.scoped("tenant.a").scoped("canary")
        assert isinstance(scoped, ScopedEventBus)
        assert scoped.parent is bus
        assert scoped.publish("check").topic == "tenant.a.canary.check"

    def test_published_count_is_shared(self):
        bus = EventBus()
        scoped = bus.scoped("t")
        bus.publish("a")
        scoped.publish("b")
        assert scoped.published_count == bus.published_count == 2

    def test_unsubscribe_roundtrip(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.scoped("t").subscribe(seen.append)
        bus.publish("t.x")
        unsubscribe()
        bus.publish("t.y")
        assert len(seen) == 1

    @pytest.mark.parametrize("bad", ["", ".", "a..b", ".a", "a."])
    def test_invalid_prefix_rejected(self, bad):
        with pytest.raises(ValueError):
            EventBus().scoped(bad)


class TestCallbackAdapter:
    def test_legacy_callback_sees_messages(self):
        messages = []
        bus = EventBus()
        bus.subscribe(callback_subscriber(messages.append))
        bus.publish("pipeline.stage", "training surrogate model")
        bus.publish("bare.topic")  # no message -> topic as fallback
        assert messages == ["training surrogate model", "bare.topic"]
