import pytest

from repro.bench.metrics import BenchmarkResult, ThroughputSample, summarize_throughput
from repro.config import cassandra_space
from repro.workload.spec import WorkloadSpec


def make_series(values):
    return [ThroughputSample(t=float(i), ops_per_second=v) for i, v in enumerate(values)]


class TestSummarizeThroughput:
    def test_basic_stats(self):
        stats = summarize_throughput(make_series([100, 200, 300]))
        assert stats["mean"] == pytest.approx(200)
        assert stats["min"] == 100
        assert stats["max"] == 300

    def test_percentiles(self):
        stats = summarize_throughput(make_series(range(101)))
        assert stats["p50"] == pytest.approx(50)
        assert stats["p95"] == pytest.approx(95)

    def test_cov(self):
        stats = summarize_throughput(make_series([100, 100, 100]))
        assert stats["cov"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_throughput([])


class TestBenchmarkResult:
    def test_aops_alias(self):
        result = BenchmarkResult(
            workload=WorkloadSpec(read_ratio=0.5),
            configuration=cassandra_space().default_configuration(),
            mean_throughput=1234.0,
            duration_seconds=300.0,
        )
        assert result.aops == 1234.0

    def test_repr_marks_faulty(self):
        result = BenchmarkResult(
            workload=WorkloadSpec(read_ratio=0.5),
            configuration=cassandra_space().default_configuration(),
            mean_throughput=10.0,
            duration_seconds=1.0,
            faulty=True,
        )
        assert "FAULTY" in repr(result)
