import pytest

from repro.errors import WorkloadError
from repro.workload.spec import WorkloadSpec, mgrast_workload


class TestWorkloadSpec:
    def test_valid_spec(self):
        spec = WorkloadSpec(read_ratio=0.5)
        assert spec.write_ratio == pytest.approx(0.5)

    def test_read_ratio_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(read_ratio=-0.1)
        with pytest.raises(WorkloadError):
            WorkloadSpec(read_ratio=1.1)

    def test_update_fraction_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(read_ratio=0.5, update_fraction=1.5)

    def test_delete_fraction_cannot_exceed_writes(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(read_ratio=0.9, delete_fraction=0.2)

    def test_positive_sizes_required(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(read_ratio=0.5, n_keys=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(read_ratio=0.5, key_bytes=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(read_ratio=0.5, krd_mean_ops=0)

    def test_label_defaults_to_rr(self):
        assert "50%" in WorkloadSpec(read_ratio=0.5).label

    def test_label_uses_name(self):
        assert WorkloadSpec(read_ratio=0.5, name="w1").label == "w1"

    def test_with_read_ratio_preserves_rest(self):
        spec = WorkloadSpec(read_ratio=0.5, value_bytes=321, name="x")
        other = spec.with_read_ratio(0.9)
        assert other.read_ratio == 0.9
        assert other.value_bytes == 321

    def test_to_profile(self):
        spec = WorkloadSpec(read_ratio=0.5, value_bytes=128, update_fraction=0.4)
        profile = spec.to_profile()
        assert profile.value_bytes == 128
        assert profile.update_fraction == 0.4
        assert profile.record_bytes > 128

    def test_frozen(self):
        spec = WorkloadSpec(read_ratio=0.5)
        with pytest.raises(AttributeError):
            spec.read_ratio = 0.9


class TestMGRastWorkload:
    def test_large_krd(self):
        """MG-RAST's defining property: huge key-reuse distance (§1)."""
        assert mgrast_workload(0.5).krd_mean_ops >= 100_000

    def test_named(self):
        assert "mgrast" in mgrast_workload(0.7).name

    def test_read_ratio_passthrough(self):
        assert mgrast_workload(0.3).read_ratio == 0.3
