"""A single-tenant middleware run is bit-identical to the legacy controller.

The contract: ``MiddlewareScheduler`` hosting exactly one tenant must
reproduce the exact :class:`ControllerRun` of ``OnlineController.run()``
on the same seed — same throughput floats, same reconfigure/rollback/
degraded flags, same configurations, and the same ``controller.*`` /
``fault.*`` / ``actuate.*`` event sequence (modulo the tenant-namespace
prefix the scheduler adds).
"""

import pytest

from repro.core.controller import OnlineController
from repro.core.policies import HysteresisPolicy, OraclePolicy
from repro.core.search import OptimizationResult
from repro.datastore import CassandraLike
from repro.faults import FaultPlan
from repro.middleware import MiddlewareScheduler, TenantSpec
from repro.runtime import EventBus
from repro.workload.spec import WorkloadSpec

SERIES = [0.1, 0.1, 0.9, 0.9, 0.3, 0.8, 0.8, 0.2]


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=100_000)


class FakeRafiki:
    """Deterministic recommender with a canary-compatible surface."""

    def __init__(self, datastore):
        self.datastore = datastore
        self.calls = []

    def recommend(self, read_ratio, use_cache=True):
        self.calls.append(read_ratio)
        if read_ratio >= 0.5:
            config = self.datastore.space.configuration(
                compaction_method="LeveledCompactionStrategy",
                file_cache_size_in_mb=2048,
            )
        else:
            config = self.datastore.default_configuration()
        return OptimizationResult(
            configuration=config,
            predicted_throughput=0.0,
            evaluations=1,
            equivalent_wall_seconds=0.0,
            strategy="fake",
        )

    def predicted_mean_std(self, read_ratio, configuration):
        return 40_000.0 + 10_000.0 * read_ratio, 2_000.0


def run_legacy(cassandra, workload, **kwargs):
    events = EventBus()
    log = []
    events.subscribe(log.append)
    controller = OnlineController(
        cassandra,
        FakeRafiki(cassandra),
        workload,
        window_seconds=60,
        policy=HysteresisPolicy(OraclePolicy(), min_change=0.08),
        seed=7,
        events=events,
        **kwargs,
    )
    return controller.run(SERIES, load=False), log


def run_middleware(cassandra, workload, **kwargs):
    events = EventBus()
    log = []
    events.subscribe(log.append)
    scheduler = MiddlewareScheduler(cassandra, FakeRafiki(cassandra), events=events)
    scheduler.add_tenant(
        TenantSpec(
            tenant_id="t0",
            rr_series=SERIES,
            base_workload=workload,
            policy=HysteresisPolicy(OraclePolicy(), min_change=0.08),
            window_seconds=60,
            seed=7,
            load=False,
            **kwargs,
        )
    )
    return scheduler.run()["t0"], log


def assert_runs_identical(legacy, tenant):
    assert len(legacy.events) == len(tenant.events)
    for a, b in zip(legacy.events, tenant.events):
        assert a.window_index == b.window_index
        assert a.read_ratio == b.read_ratio
        assert a.reconfigured == b.reconfigured
        assert a.configuration == b.configuration
        assert a.mean_throughput == b.mean_throughput  # bitwise
        assert a.rolled_back == b.rolled_back
        assert a.degraded == b.degraded
    assert legacy.mean_throughput == tenant.mean_throughput


def tenant_event_view(log, tenant_id="t0"):
    """The tenant's events with the namespace stripped, scheduler noise out."""
    prefix = f"tenant.{tenant_id}."
    return [
        (e.topic[len(prefix):], e.message)
        for e in log
        if e.topic.startswith(prefix)
    ]


class TestSingleTenantEquivalence:
    def test_plain_run_is_bit_identical(self, cassandra, workload):
        legacy, legacy_log = run_legacy(cassandra, workload)
        tenant, mw_log = run_middleware(cassandra, workload)
        assert_runs_identical(legacy, tenant)
        legacy_view = [(e.topic, e.message) for e in legacy_log]
        # The middleware teardown event is additive (the legacy shim
        # keeps its server); everything before it must match exactly.
        mw_view = [
            pair
            for pair in tenant_event_view(mw_log)
            if pair[0] != "actuate.teardown"
        ]
        assert mw_view == legacy_view

    def test_faulty_canaried_run_is_bit_identical(self, cassandra, workload):
        plan = FaultPlan.generate(
            seed=13,
            n_windows=len(SERIES),
            n_nodes=1,
            slowdown_probability=0.0,
            search_fault_probability=0.4,
            push_fault_probability=0.4,
        )
        assert not plan.is_empty  # the seed must actually exercise faults
        kwargs = dict(fault_plan=plan, canary_margin=0.05, canary_std_factor=0.0)
        legacy, legacy_log = run_legacy(cassandra, workload, **kwargs)
        tenant, mw_log = run_middleware(cassandra, workload, **kwargs)
        assert_runs_identical(legacy, tenant)
        legacy_view = [(e.topic, e.message) for e in legacy_log]
        mw_view = [
            pair
            for pair in tenant_event_view(mw_log)
            if pair[0] != "actuate.teardown"
        ]
        assert mw_view == legacy_view

    def test_multinode_run_is_bit_identical(self, cassandra, workload):
        kwargs = dict(n_nodes=3, replication_factor=2)
        legacy, _ = run_legacy(cassandra, workload, **kwargs)
        tenant, _ = run_middleware(cassandra, workload, **kwargs)
        assert_runs_identical(legacy, tenant)
