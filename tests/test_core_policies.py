"""DecisionPolicy strategies: the three paper modes + hysteresis."""

import pytest

from repro.core.policies import (
    DECISION_MODES,
    ForecastPolicy,
    HysteresisPolicy,
    OraclePolicy,
    ReactivePolicy,
    WindowObservation,
    make_policy,
)
from repro.errors import SearchError
from repro.workload.forecast import LastValueForecaster


def window(index, rr, previous=None):
    return WindowObservation(index=index, read_ratio=rr, previous_read_ratio=previous)


class TestPaperModes:
    def test_oracle_sees_current(self):
        assert OraclePolicy().decide(window(0, 0.7)) == 0.7

    def test_reactive_lags_one_window(self):
        policy = ReactivePolicy()
        assert policy.decide(window(0, 0.7, previous=None)) is None
        assert policy.decide(window(1, 0.2, previous=0.7)) == 0.7

    def test_forecast_cold_start_returns_none(self):
        policy = ForecastPolicy(LastValueForecaster(initial=0.5))
        assert policy.decide(window(0, 0.9)) is None

    def test_forecast_predicts_after_observation(self):
        policy = ForecastPolicy(LastValueForecaster(initial=0.5))
        policy.observe(0.3)
        assert policy.decide(window(1, 0.9, previous=0.3)) == pytest.approx(0.3)

    def test_forecast_assume_warm(self):
        policy = ForecastPolicy(LastValueForecaster(initial=0.4), assume_warm=True)
        assert policy.decide(window(0, 0.9)) == pytest.approx(0.4)

    def test_forecast_clips_prediction(self):
        class WildForecaster(LastValueForecaster):
            def predict(self):
                return 1.7

        policy = ForecastPolicy(WildForecaster(), assume_warm=True)
        assert policy.decide(window(0, 0.5)) == 1.0

    def test_forecast_requires_forecaster(self):
        with pytest.raises(SearchError):
            ForecastPolicy(None)

    def test_proactive_flags(self):
        assert not OraclePolicy().proactive
        assert not ReactivePolicy().proactive
        assert ForecastPolicy(LastValueForecaster()).proactive


class TestHysteresis:
    def test_first_decision_passes(self):
        policy = HysteresisPolicy(OraclePolicy(), min_change=0.1)
        assert policy.decide(window(0, 0.5)) == 0.5

    def test_small_change_suppressed(self):
        policy = HysteresisPolicy(OraclePolicy(), min_change=0.1)
        policy.decide(window(0, 0.5))
        assert policy.decide(window(1, 0.55)) is None
        assert policy.decide(window(2, 0.65)) == 0.65

    def test_suppressed_decision_does_not_move_anchor(self):
        """Creep below the threshold must not accumulate into a silent anchor drift."""
        policy = HysteresisPolicy(OraclePolicy(), min_change=0.1)
        policy.decide(window(0, 0.5))
        for i, rr in enumerate([0.54, 0.58, 0.59], start=1):
            assert policy.decide(window(i, rr)) is None
        assert policy.decide(window(4, 0.61)) == 0.61

    def test_cooldown_suppresses_by_window_distance(self):
        policy = HysteresisPolicy(OraclePolicy(), min_change=0.0, cooldown_windows=3)
        assert policy.decide(window(0, 0.1)) == 0.1
        assert policy.decide(window(1, 0.9)) is None
        assert policy.decide(window(2, 0.9)) is None
        assert policy.decide(window(3, 0.9)) == 0.9

    def test_inner_none_passes_through(self):
        policy = HysteresisPolicy(ReactivePolicy(), min_change=0.0)
        assert policy.decide(window(0, 0.5, previous=None)) is None

    def test_reset_clears_anchor(self):
        policy = HysteresisPolicy(OraclePolicy(), min_change=0.5)
        policy.decide(window(0, 0.5))
        policy.reset()
        assert policy.decide(window(0, 0.51)) == 0.51

    def test_delegates_name_and_proactive(self):
        policy = HysteresisPolicy(ForecastPolicy(LastValueForecaster()))
        assert policy.name == "forecast"
        assert policy.proactive

    def test_validation(self):
        with pytest.raises(SearchError):
            HysteresisPolicy(OraclePolicy(), min_change=-0.1)
        with pytest.raises(SearchError):
            HysteresisPolicy(OraclePolicy(), cooldown_windows=-1)


class TestMakePolicy:
    def test_all_paper_modes(self):
        assert make_policy("oracle").name == "oracle"
        assert make_policy("reactive").name == "reactive"
        assert make_policy("forecast", LastValueForecaster()).name == "forecast"
        assert set(DECISION_MODES) == {"oracle", "reactive", "forecast"}

    def test_unknown_mode(self):
        with pytest.raises(SearchError):
            make_policy("psychic")

    def test_forecast_without_forecaster(self):
        with pytest.raises(SearchError):
            make_policy("forecast")
