import pytest

from repro.sim.costs import (
    DEFAULT_COSTS,
    commitlog_bytes_per_write,
    expected_disk_probes_per_read,
    expected_version_spread,
    read_cpu_seconds,
    write_cpu_seconds,
)


class TestReadCpuSeconds:
    def test_base_only(self):
        assert read_cpu_seconds(0, 0, 0) == pytest.approx(DEFAULT_COSTS.cpu_read_base)

    def test_blooms_add_cost(self):
        assert read_cpu_seconds(10, 0, 0) > read_cpu_seconds(1, 0, 0)

    def test_probes_cost_more_than_blooms(self):
        per_bloom = read_cpu_seconds(1, 0, 0) - read_cpu_seconds(0, 0, 0)
        per_probe = read_cpu_seconds(0, 1, 0) - read_cpu_seconds(0, 0, 0)
        assert per_probe > per_bloom

    def test_linear_composition(self):
        c = DEFAULT_COSTS
        expected = (
            c.cpu_read_base + 3 * c.cpu_bloom_check + 2 * c.cpu_probe + 1 * c.cpu_cache_hit
        )
        assert read_cpu_seconds(3, 2, 1) == pytest.approx(expected)


class TestWriteCosts:
    def test_write_cpu_positive(self):
        assert write_cpu_seconds() > 0

    def test_commitlog_bytes_include_overhead(self):
        assert commitlog_bytes_per_write(100) == pytest.approx(
            100 + DEFAULT_COSTS.commitlog_overhead_bytes
        )


class TestVersionSpread:
    def test_single_table(self):
        assert expected_version_spread(1, 0.5) == 1.0

    def test_no_updates_no_spread(self):
        assert expected_version_spread(20, 0.0) == 1.0

    def test_grows_with_tables(self):
        assert expected_version_spread(10, 0.5) > expected_version_spread(2, 0.5)

    def test_grows_with_update_fraction(self):
        assert expected_version_spread(10, 0.8) > expected_version_spread(10, 0.2)

    def test_saturates(self):
        assert expected_version_spread(1000, 1.0) == expected_version_spread(500, 1.0)

    def test_never_exceeds_table_count(self):
        assert expected_version_spread(2, 1.0) <= 2.0

    def test_update_fraction_clamped(self):
        assert expected_version_spread(10, 2.0) == expected_version_spread(10, 1.0)


class TestDiskProbes:
    def test_perfect_cache_no_probes(self):
        assert expected_disk_probes_per_read(1.0, 10, 0.01, 1.0) == 0.0

    def test_cold_cache_probes_at_least_one(self):
        assert expected_disk_probes_per_read(1.0, 10, 0.0, 0.0) >= 1.0

    def test_false_positives_add_probes(self):
        low = expected_disk_probes_per_read(1.0, 20, 0.001, 0.0)
        high = expected_disk_probes_per_read(1.0, 20, 0.05, 0.0)
        assert high > low

    def test_spread_adds_probes(self):
        assert expected_disk_probes_per_read(3.0, 20, 0.01, 0.0) > (
            expected_disk_probes_per_read(1.0, 20, 0.01, 0.0)
        )

    def test_hit_ratio_clamped(self):
        assert expected_disk_probes_per_read(1.0, 5, 0.01, 1.5) == 0.0
        assert expected_disk_probes_per_read(1.0, 5, 0.01, -0.5) == (
            expected_disk_probes_per_read(1.0, 5, 0.01, 0.0)
        )
