import json

import numpy as np
import pytest

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.persistence import (
    load_surrogate,
    save_surrogate,
    surrogate_from_dict,
    surrogate_to_dict,
)
from repro.core.surrogate import SurrogateModel
from repro.errors import TrainingError
from repro.ml.ensemble import EnsembleConfig
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)


@pytest.fixture(scope="module")
def space():
    return cassandra_space()


@pytest.fixture(scope="module")
def fitted(space):
    rng = np.random.default_rng(0)
    samples = []
    for _ in range(10):
        config = space.sample_configuration(rng, PARAMS)
        for rr in (0.0, 0.5, 1.0):
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=rr),
                    configuration=config,
                    throughput=50_000 + 10_000 * rr + float(rng.normal(0, 500)),
                )
            )
    dataset = PerformanceDataset(samples, PARAMS)
    model = SurrogateModel(space, PARAMS, EnsembleConfig(n_networks=3, max_epochs=40))
    return model.fit(dataset, seed=4)


class TestRoundTrip:
    def test_dict_round_trip_preserves_predictions(self, fitted, space):
        restored = surrogate_from_dict(surrogate_to_dict(fitted), space)
        probe = fitted.encode(0.7, space.default_configuration())[None, :]
        assert np.allclose(
            fitted.predict_features(probe), restored.predict_features(probe)
        )

    def test_file_round_trip(self, fitted, space, tmp_path):
        path = tmp_path / "model" / "surrogate.json"
        save_surrogate(fitted, path)
        restored = load_surrogate(path, space)
        for rr in (0.0, 0.5, 1.0):
            cfg = space.default_configuration()
            assert fitted.predict(rr, cfg) == pytest.approx(restored.predict(rr, cfg))

    def test_artifact_is_json(self, fitted, tmp_path):
        path = tmp_path / "s.json"
        save_surrogate(fitted, path)
        blob = json.loads(path.read_text())
        assert blob["format_version"] == 1
        assert blob["feature_parameters"] == PARAMS

    def test_restored_usable_by_optimizer(self, fitted, space, tmp_path):
        from repro.core.search import ConfigurationOptimizer

        path = tmp_path / "s.json"
        save_surrogate(fitted, path)
        restored = load_surrogate(path, space)
        result = ConfigurationOptimizer(restored).optimize(0.9, seed=0)
        assert result.predicted_throughput > 0


class TestRafikiSaveLoad:
    def test_round_trip_recommendations_match(self, fitted, space, tmp_path):
        from repro.core.rafiki import Rafiki
        from repro.datastore import CassandraLike

        cassandra = CassandraLike()
        rafiki = Rafiki(cassandra, fitted, PARAMS, seed=9)
        path = tmp_path / "rafiki.json"
        rafiki.save(path)
        restored = Rafiki.load(path, cassandra, seed=9)
        a = rafiki.recommend(0.8)
        b = restored.recommend(0.8)
        assert a.configuration == b.configuration
        assert a.predicted_throughput == pytest.approx(b.predicted_throughput)


class TestValidation:
    def test_unfitted_rejected(self, space):
        model = SurrogateModel(space, PARAMS)
        with pytest.raises(TrainingError):
            surrogate_to_dict(model)

    def test_unknown_version_rejected(self, fitted, space):
        blob = surrogate_to_dict(fitted)
        blob["format_version"] = 99
        with pytest.raises(TrainingError):
            surrogate_from_dict(blob, space)

    def test_space_must_cover_features(self, fitted):
        from repro.config.parameter import FloatParameter
        from repro.config.space import ConfigurationSpace

        tiny = ConfigurationSpace(
            "tiny", [FloatParameter(name="x", default=0.5, low=0.0, high=1.0)]
        )
        with pytest.raises(TrainingError):
            surrogate_from_dict(surrogate_to_dict(fitted), tiny)

    def test_empty_networks_rejected(self, fitted, space):
        blob = surrogate_to_dict(fitted)
        blob["networks"] = []
        with pytest.raises(TrainingError):
            surrogate_from_dict(blob, space)


class TestCorruptArtifacts:
    """load_surrogate raises PersistenceError, never raw parser errors."""

    def test_missing_file(self, space, tmp_path):
        from repro.errors import PersistenceError

        with pytest.raises(PersistenceError):
            load_surrogate(tmp_path / "nope.json", space)

    def test_truncated_file(self, fitted, space, tmp_path):
        from repro.errors import PersistenceError

        path = tmp_path / "s.json"
        save_surrogate(fitted, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(PersistenceError):
            load_surrogate(path, space)

    def test_bit_flip_detected_by_checksum(self, fitted, space, tmp_path):
        from repro.errors import PersistenceError

        path = tmp_path / "s.json"
        save_surrogate(fitted, path)
        text = path.read_text()
        path.write_text(text.replace('"n_networks": 3', '"n_networks": 4', 1))
        with pytest.raises(PersistenceError, match="checksum"):
            load_surrogate(path, space)

    def test_structurally_damaged_payload(self, fitted, space, tmp_path):
        from repro.errors import PersistenceError
        from repro.recovery.atomic import write_artifact

        path = tmp_path / "s.json"
        blob = surrogate_to_dict(fitted)
        del blob["x_scaler"]
        write_artifact(path, blob, kind="surrogate", version=1)
        with pytest.raises(PersistenceError):
            load_surrogate(path, space)

    def test_corruption_publishes_event(self, fitted, space, tmp_path):
        from repro.errors import PersistenceError
        from repro.runtime.events import EventBus

        path = tmp_path / "s.json"
        save_surrogate(fitted, path)
        path.write_text(path.read_text()[:-8])
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="recovery.corrupt_artifact")
        with pytest.raises(PersistenceError):
            load_surrogate(path, space, events=bus)
        assert len(seen) == 1

    def test_legacy_plain_json_still_loads(self, fitted, space, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(surrogate_to_dict(fitted)))
        restored = load_surrogate(path, space)
        cfg = space.default_configuration()
        assert restored.predict(0.5, cfg) == pytest.approx(fitted.predict(0.5, cfg))

    def test_semantic_mismatch_stays_training_error(self, fitted, space, tmp_path):
        # An *intact* artifact whose stored features exceed the caller's
        # space is a schema problem (TrainingError), not file corruption.
        from repro.config.parameter import FloatParameter
        from repro.config.space import ConfigurationSpace

        path = tmp_path / "s.json"
        save_surrogate(fitted, path)
        tiny = ConfigurationSpace(
            "tiny", [FloatParameter(name="x", default=0.5, low=0.0, high=1.0)]
        )
        with pytest.raises(TrainingError):
            load_surrogate(path, tiny)
