import pytest

from repro.config import cassandra_space
from repro.config.cassandra import LEVELED
from repro.errors import ConfigurationError
from repro.lsm.knobs import MB, EngineKnobs

from tests.conftest import make_knobs


class TestEngineKnobs:
    def test_from_default_configuration(self):
        space = cassandra_space()
        knobs = EngineKnobs.from_configuration(space.default_configuration())
        assert knobs.concurrent_writes == 32
        assert knobs.file_cache_bytes == 512 * MB
        assert knobs.memtable_space_bytes == (2048 + 2048) * MB
        assert knobs.commitlog_sync_period_s == pytest.approx(10.0)

    def test_flush_trigger_is_threshold_times_space(self):
        knobs = make_knobs(memtable_space_bytes=1000, memtable_cleanup_threshold=0.25)
        assert knobs.flush_trigger_bytes == pytest.approx(250.0)

    def test_compaction_method_validated(self):
        with pytest.raises(ConfigurationError):
            make_knobs(compaction_method="NopeStrategy")

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            make_knobs(memtable_cleanup_threshold=0.0)
        with pytest.raises(ConfigurationError):
            make_knobs(memtable_cleanup_threshold=1.5)

    def test_overrides_flow_through(self):
        space = cassandra_space()
        cfg = space.configuration(
            compaction_method=LEVELED,
            concurrent_compactors=7,
            compaction_throughput_mb_per_sec=32,
        )
        knobs = EngineKnobs.from_configuration(cfg)
        assert knobs.compaction_method == LEVELED
        assert knobs.concurrent_compactors == 7
        assert knobs.compaction_throughput_bytes == 32 * MB

    def test_frozen(self):
        knobs = make_knobs()
        with pytest.raises(AttributeError):
            knobs.concurrent_writes = 5
