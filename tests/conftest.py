"""Shared fixtures: small-scale knobs and hardware for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import cassandra_space
from repro.config.cassandra import LEVELED, SIZE_TIERED
from repro.lsm.knobs import EngineKnobs
from repro.sim.hardware import HardwareSpec

KB = 1024
MB = 1024 * KB


def make_knobs(**overrides) -> EngineKnobs:
    """Small engine knobs that flush/compact within a few hundred ops."""
    base = dict(
        compaction_method=SIZE_TIERED,
        concurrent_writes=32,
        concurrent_reads=32,
        file_cache_bytes=256 * KB,
        memtable_space_bytes=64 * KB,
        memtable_cleanup_threshold=0.5,
        memtable_flush_writers=2,
        concurrent_compactors=2,
        compaction_throughput_bytes=16 * MB,
        bloom_fp_chance=0.01,
        key_cache_bytes=16 * KB,
        row_cache_bytes=0,
        commitlog_segment_bytes=64 * KB,
        commitlog_sync_period_s=10.0,
        sstable_target_bytes=32 * KB,
    )
    base.update(overrides)
    return EngineKnobs(**base)


@pytest.fixture
def small_knobs() -> EngineKnobs:
    return make_knobs()


@pytest.fixture
def leveled_knobs() -> EngineKnobs:
    return make_knobs(compaction_method=LEVELED)


@pytest.fixture
def small_hardware() -> HardwareSpec:
    """A toy server so simulated costs stay visible at small scale."""
    return HardwareSpec(
        name="test-box",
        cpu_cores=4,
        cpu_ghz=3.0,
        ram_bytes=4 * MB,
        disk_seq_bandwidth=16 * MB,
        disk_rand_iops=2_000.0,
        disk_count=1,
        net_bandwidth=10 * MB,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def space():
    return cassandra_space()
