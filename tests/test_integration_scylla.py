"""End-to-end ScyllaDB pipeline: the paper's §4.10 flow at small scale.

Cassandra's ANOVA feeds the ScyllaDB key-parameter selection (the
auto-tuner contaminates direct ANOVA); the resulting tuner only touches
parameters ScyllaDB actually honours.
"""

import numpy as np
import pytest

from repro.bench.ycsb import YCSBBenchmark
from repro.core.anova import rank_parameters
from repro.core.rafiki import RafikiPipeline
from repro.datastore import CassandraLike, ScyllaLike
from repro.ml.ensemble import EnsembleConfig
from repro.workload.spec import mgrast_workload


@pytest.fixture(scope="module")
def scylla_pipeline_result():
    cassandra = CassandraLike()
    scylla = ScyllaLike()
    workload = mgrast_workload(0.7)

    # Full-length (300 s) benchmark runs: Scylla's tuner-induced noise
    # and the ~2% run bias need the paper's averaging window to resolve
    # parameter effects above the noise floor.
    cassandra_ranking = rank_parameters(cassandra, workload, repeats=2, seed=5)
    pipeline = RafikiPipeline(
        scylla,
        workload,
        ensemble_config=EnsembleConfig(n_networks=6, max_epochs=80),
        n_workloads=6,
        n_configurations=10,
        n_faulty=2,
        cassandra_ranking=cassandra_ranking,
        seed=5,
    )
    return scylla, pipeline.run()


class TestScyllaEndToEnd:
    def test_key_parameters_avoid_autotuned(self, scylla_pipeline_result):
        scylla, (rafiki, report) = scylla_pipeline_result
        assert len(report.key_parameters) == 5
        assert not set(report.key_parameters) & scylla.autotuned_parameters

    def test_recommendation_only_moves_honoured_knobs(self, scylla_pipeline_result):
        scylla, (rafiki, _) = scylla_pipeline_result
        result = rafiki.recommend(0.7)
        # The effective knobs must differ from defaults only through
        # parameters the auto-tuner does not override.
        tuned = scylla.effective_knobs(result.configuration)
        default = scylla.effective_knobs(scylla.default_configuration())
        assert tuned.concurrent_writes == default.concurrent_writes
        assert tuned.file_cache_bytes == default.file_cache_bytes
        assert tuned.concurrent_compactors == default.concurrent_compactors

    def test_tuned_not_much_worse_than_default(self, scylla_pipeline_result):
        """With the auto-tuner active the opportunity is small; Rafiki
        must at least not wreck performance (paper: +9-12%)."""
        scylla, (rafiki, _) = scylla_pipeline_result
        bench = YCSBBenchmark(scylla)
        wl = mgrast_workload(0.7)

        def avg(config):
            return np.mean(
                [bench.run(config, wl, seed=50 + i).mean_throughput for i in range(4)]
            )

        tuned = avg(rafiki.recommend(0.7).configuration)
        default = avg(scylla.default_configuration())
        # Scylla's tuner oscillation puts several percent of noise on
        # even a 4-run average (Figure 10).
        assert tuned > 0.88 * default
