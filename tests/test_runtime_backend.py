"""Execution backends: ordering, hooks, fallbacks, error propagation."""

import numpy as np
import pytest

from repro.runtime import ProcessPoolBackend, SerialBackend, resolve_backend


def square(x):
    return x * x


def draw(rng):
    """Consume a task-embedded stream (the seeding discipline)."""
    return float(rng.random())


def boom(x):
    raise ValueError(f"task {x} failed")


class TestSerialBackend:
    def test_results_in_task_order(self):
        assert SerialBackend().map_tasks(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_tasks(self):
        assert SerialBackend().map_tasks(square, []) == []

    def test_on_result_hook(self):
        seen = []
        SerialBackend().map_tasks(square, [2, 3], on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 4), (1, 9)]

    def test_error_propagates(self):
        with pytest.raises(ValueError):
            SerialBackend().map_tasks(boom, [1])


class TestProcessPoolBackend:
    def test_results_in_task_order(self):
        with ProcessPoolBackend(workers=2) as backend:
            assert backend.map_tasks(square, list(range(10))) == [i * i for i in range(10)]

    def test_on_result_sees_every_task(self):
        seen = []
        with ProcessPoolBackend(workers=2) as backend:
            backend.map_tasks(square, [1, 2, 3, 4], on_result=lambda i, r: seen.append(i))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_single_worker_falls_back_to_serial(self):
        backend = ProcessPoolBackend(workers=1)
        assert backend.map_tasks(square, [2, 3]) == [4, 9]
        assert backend._executor is None  # no pool was spun up

    def test_single_task_falls_back_to_serial(self):
        backend = ProcessPoolBackend(workers=4)
        assert backend.map_tasks(square, [5]) == [25]
        assert backend._executor is None

    def test_bounded_pending_queue(self):
        with ProcessPoolBackend(workers=2, max_pending=3) as backend:
            assert backend.map_tasks(square, list(range(20))) == [i * i for i in range(20)]

    def test_seeded_tasks_scheduling_independent(self):
        """Identical task streams -> identical results on any backend."""
        tasks_a = [np.random.default_rng(s) for s in (7, 8, 9, 10)]
        tasks_b = [np.random.default_rng(s) for s in (7, 8, 9, 10)]
        serial = SerialBackend().map_tasks(draw, tasks_a)
        with ProcessPoolBackend(workers=2) as backend:
            parallel = backend.map_tasks(draw, tasks_b)
        assert serial == parallel

    def test_error_propagates(self):
        with ProcessPoolBackend(workers=2) as backend:
            with pytest.raises(ValueError):
                backend.map_tasks(boom, [1, 2])

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)

    def test_close_idempotent(self):
        backend = ProcessPoolBackend(workers=2)
        backend.map_tasks(square, [1, 2])
        backend.close()
        backend.close()
        # Reusable after close: a fresh pool is created lazily.
        assert backend.map_tasks(square, [3, 4]) == [9, 16]


class TestResolveBackend:
    def test_explicit_backend_wins(self):
        backend = SerialBackend()
        assert resolve_backend(backend, workers=8) is backend

    def test_workers_selects_pool(self):
        backend = resolve_backend(workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 2

    def test_default_is_serial(self):
        assert isinstance(resolve_backend(), SerialBackend)
        assert isinstance(resolve_backend(workers=1), SerialBackend)

    def test_invalid_workers_rejected(self):
        for bad in (0, -3):
            with pytest.raises(ValueError, match="workers"):
                resolve_backend(workers=bad)
