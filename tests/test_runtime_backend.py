"""Execution backends: ordering, hooks, fallbacks, error propagation."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.runtime import EventBus, ProcessPoolBackend, SerialBackend, resolve_backend


def square(x):
    return x * x


def draw(rng):
    """Consume a task-embedded stream (the seeding discipline)."""
    return float(rng.random())


def boom(x):
    raise ValueError(f"task {x} failed")


def crash_once(task):
    """Hard-kill the worker on the first attempt at a marked task.

    ``task`` is ``(value, sentinel_path)``; the sentinel file records
    that the crash already happened so the retry succeeds.
    """
    value, sentinel = task
    if sentinel is not None and not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("crashed")
        os._exit(1)  # simulates a segfault / OOM kill
    return value * value


def crash_in_workers(task):
    """Die whenever run inside a pool worker; succeed inline."""
    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return task * task


def draw_maybe_crash(task):
    """Like :func:`draw`, but crash the worker once for a marked task."""
    rng, sentinel = task
    if sentinel is not None and not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("crashed")
        os._exit(1)
    return float(rng.random())


class TestSerialBackend:
    def test_results_in_task_order(self):
        assert SerialBackend().map_tasks(square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_tasks(self):
        assert SerialBackend().map_tasks(square, []) == []

    def test_on_result_hook(self):
        seen = []
        SerialBackend().map_tasks(square, [2, 3], on_result=lambda i, r: seen.append((i, r)))
        assert seen == [(0, 4), (1, 9)]

    def test_error_propagates(self):
        with pytest.raises(ValueError):
            SerialBackend().map_tasks(boom, [1])


class TestProcessPoolBackend:
    def test_results_in_task_order(self):
        with ProcessPoolBackend(workers=2) as backend:
            assert backend.map_tasks(square, list(range(10))) == [i * i for i in range(10)]

    def test_on_result_sees_every_task(self):
        seen = []
        with ProcessPoolBackend(workers=2) as backend:
            backend.map_tasks(square, [1, 2, 3, 4], on_result=lambda i, r: seen.append(i))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_single_worker_falls_back_to_serial(self):
        backend = ProcessPoolBackend(workers=1)
        assert backend.map_tasks(square, [2, 3]) == [4, 9]
        assert backend._executor is None  # no pool was spun up

    def test_single_task_falls_back_to_serial(self):
        backend = ProcessPoolBackend(workers=4)
        assert backend.map_tasks(square, [5]) == [25]
        assert backend._executor is None

    def test_bounded_pending_queue(self):
        with ProcessPoolBackend(workers=2, max_pending=3) as backend:
            assert backend.map_tasks(square, list(range(20))) == [i * i for i in range(20)]

    def test_seeded_tasks_scheduling_independent(self):
        """Identical task streams -> identical results on any backend."""
        tasks_a = [np.random.default_rng(s) for s in (7, 8, 9, 10)]
        tasks_b = [np.random.default_rng(s) for s in (7, 8, 9, 10)]
        serial = SerialBackend().map_tasks(draw, tasks_a)
        with ProcessPoolBackend(workers=2) as backend:
            parallel = backend.map_tasks(draw, tasks_b)
        assert serial == parallel

    def test_error_propagates(self):
        with ProcessPoolBackend(workers=2) as backend:
            with pytest.raises(ValueError):
                backend.map_tasks(boom, [1, 2])

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)

    def test_close_idempotent(self):
        backend = ProcessPoolBackend(workers=2)
        backend.map_tasks(square, [1, 2])
        backend.close()
        backend.close()
        # Reusable after close: a fresh pool is created lazily.
        assert backend.map_tasks(square, [3, 4]) == [9, 16]


class TestWorkerCrashContainment:
    def test_crashed_task_retried_on_fresh_pool(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        tasks = [(i, sentinel if i == 3 else None) for i in range(6)]
        bus = EventBus()
        broken = []
        bus.subscribe(lambda e: broken.append(e), topic="backend.pool_broken")
        with ProcessPoolBackend(workers=2, task_retries=2, events=bus) as backend:
            results = backend.map_tasks(crash_once, tasks)
        assert results == [i * i for i in range(6)]
        assert len(broken) == 1
        assert 3 in broken[0].payload["victims"]

    def test_on_result_fires_for_retried_tasks(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        tasks = [(i, sentinel if i == 0 else None) for i in range(5)]
        seen = []
        with ProcessPoolBackend(workers=2, task_retries=2) as backend:
            backend.map_tasks(
                crash_once, tasks, on_result=lambda i, r: seen.append(i)
            )
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_persistent_crasher_falls_back_to_serial(self):
        bus = EventBus()
        fallbacks = []
        bus.subscribe(lambda e: fallbacks.append(e), topic="backend.serial_fallback")
        with ProcessPoolBackend(
            workers=2, task_retries=1, pool_restarts=2, events=bus
        ) as backend:
            results = backend.map_tasks(crash_in_workers, list(range(8)))
        assert results == [i * i for i in range(8)]
        assert len(fallbacks) == 1

    def test_retried_results_bitwise_identical(self, tmp_path):
        """A retried task re-pickles its parent-side RNG, so the retry
        reproduces the first-try draw exactly."""
        sentinel = str(tmp_path / "crashed-once")
        rngs = [np.random.default_rng(s) for s in (7, 8, 9, 10)]
        tasks = [(rng, sentinel if i == 1 else None) for i, rng in enumerate(rngs)]
        with ProcessPoolBackend(workers=2, task_retries=2) as backend:
            parallel = backend.map_tasks(draw_maybe_crash, tasks)
        serial = SerialBackend().map_tasks(
            draw, [np.random.default_rng(s) for s in (7, 8, 9, 10)]
        )
        assert parallel == serial

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=2, task_retries=-1)
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=2, pool_restarts=-1)


class TestResolveBackend:
    def test_explicit_backend_wins(self):
        backend = SerialBackend()
        assert resolve_backend(backend, workers=8) is backend

    def test_workers_selects_pool(self):
        backend = resolve_backend(workers=2)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 2

    def test_default_is_serial(self):
        assert isinstance(resolve_backend(), SerialBackend)
        assert isinstance(resolve_backend(workers=1), SerialBackend)

    def test_invalid_workers_rejected(self):
        for bad in (0, -3):
            with pytest.raises(ValueError, match="workers"):
                resolve_backend(workers=bad)
