"""Content-addressed state shipping over persistent worker pools.

The sharded serve loop must ship the shared rafiki blob only when its
decision-relevant fingerprint changes, serve steady-state rounds from
worker-side blob caches, and survive worker restarts via the one-shot
miss/refetch protocol — all while staying *bit-identical* to the serial
loop (results, shared-cache statistics, LRU order, seed-stream
counters).  The ``backend.state_*`` events are the only topics exempt
from the event-sequence contract (blob placement depends on OS worker
scheduling).
"""

import numpy as np
import pytest

from repro.bench.dataset import PerformanceDataset, PerformanceSample
from repro.config import CASSANDRA_KEY_PARAMETERS, cassandra_space
from repro.core.policies import OraclePolicy
from repro.core.rafiki import Rafiki
from repro.core.surrogate import SurrogateModel
from repro.datastore import CassandraLike
from repro.middleware import MiddlewareScheduler, TenantSpec
from repro.ml.ensemble import EnsembleConfig
from repro.runtime import EventBus, ProcessPoolBackend, SerialBackend
from repro.runtime.stateship import (
    FINGERPRINT_HEX_CHARS,
    WORKER_CACHE_SLOTS,
    StateMissError,
    StateShipment,
    StateShipper,
    install_shipment,
    reset_worker_state_cache,
    state_fingerprint,
)
from repro.workload.spec import WorkloadSpec

PARAMS = list(CASSANDRA_KEY_PARAMETERS)
WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)


def square(x):
    return x * x


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def tiny_surrogate():
    """A real (if crude) surrogate so recommend() runs a real search."""
    space = cassandra_space()
    rng = np.random.default_rng(5)
    samples = []
    for _ in range(6):
        config = space.sample_configuration(rng, PARAMS)
        vec = config.to_vector(PARAMS)
        for rr in (0.0, 0.5, 1.0):
            samples.append(
                PerformanceSample(
                    workload=WorkloadSpec(read_ratio=rr),
                    configuration=config,
                    throughput=50_000 + 20_000 * vec[0] + 4_000 * rr,
                )
            )
    model = SurrogateModel(space, PARAMS, EnsembleConfig(n_networks=2, max_epochs=12))
    return model.fit(PerformanceDataset(samples, PARAMS), seed=2)


def make_rafiki(cassandra, tiny_surrogate):
    rafiki = Rafiki(
        cassandra, tiny_surrogate, PARAMS, seed=0, rr_cache_resolution=0.01
    )
    rafiki.optimizer.population_size = 8
    rafiki.optimizer.generations = 2
    return rafiki


def serve(cassandra, rafiki, series_by_tenant, backend=None, on_window=None):
    """Run one campaign; returns (summary, filtered log, scheduler)."""
    events = EventBus()
    log = []
    events.subscribe(log.append)
    if on_window is not None:
        events.subscribe(on_window, topic="scheduler.window")
    scheduler = MiddlewareScheduler(cassandra, rafiki, events=events, backend=backend)
    for i, (tenant_id, series) in enumerate(series_by_tenant.items()):
        scheduler.add_tenant(
            TenantSpec(
                tenant_id=tenant_id,
                rr_series=series,
                base_workload=WORKLOAD,
                policy=OraclePolicy(),
                seed=i + 1,
                window_seconds=30,
                load=False,
            )
        )
    results = scheduler.run()
    summary = {
        tid: [
            (
                e.window_index,
                e.read_ratio,
                e.reconfigured,
                e.mean_throughput,
                str(e.configuration),
            )
            for e in r.events
        ]
        for tid, r in results.items()
    }
    log_view = [
        (e.topic, e.message, repr(sorted(e.payload.items())))
        for e in log
        if not e.topic.startswith("backend.state")
    ]
    return summary, log_view, scheduler


def rafiki_state(rafiki):
    """The shared state a serial and sharded run must agree on bitwise."""
    return (
        (rafiki.cache.stats.hits, rafiki.cache.stats.misses),
        list(rafiki.cache._entries.keys()),
        dict(rafiki.seeds._counts),
    )


class TestFingerprint:
    def test_stable_and_compact(self):
        assert state_fingerprint(b"abc") == state_fingerprint(b"abc")
        assert len(state_fingerprint(b"abc")) == FINGERPRINT_HEX_CHARS

    def test_distinguishes_content(self):
        assert state_fingerprint(b"abc") != state_fingerprint(b"abd")


class TestWorkerBlobCache:
    @pytest.fixture(autouse=True)
    def clean_cache(self):
        reset_worker_state_cache()
        yield
        reset_worker_state_cache()

    def test_blob_shipment_installs_and_caches(self):
        blob = b"state-v1"
        shipment = StateShipment(state_fingerprint(blob), blob)
        assert install_shipment(shipment) == (blob, False)
        # A later fingerprint-only shipment is served from the cache.
        assert install_shipment(StateShipment(shipment.fingerprint)) == (blob, True)

    def test_fingerprint_only_miss_raises(self):
        with pytest.raises(StateMissError):
            install_shipment(StateShipment("deadbeefdeadbeef"))

    def test_cache_is_bounded_lru(self):
        blobs = [b"state-%d" % i for i in range(WORKER_CACHE_SLOTS + 2)]
        for blob in blobs:
            install_shipment(StateShipment(state_fingerprint(blob), blob))
        # The oldest two fell out; the newest are still resident.
        for blob in blobs[:2]:
            with pytest.raises(StateMissError):
                install_shipment(StateShipment(state_fingerprint(blob)))
        for blob in blobs[2:]:
            assert install_shipment(
                StateShipment(state_fingerprint(blob))
            ) == (blob, True)

    def test_payload_bytes(self):
        fp = state_fingerprint(b"x" * 100)
        assert StateShipment(fp).payload_bytes == len(fp)
        assert StateShipment(fp, b"x" * 100).payload_bytes == len(fp) + 100


class TestStateShipper:
    def test_blob_travels_only_on_fingerprint_change(self):
        shipper = StateShipper()
        pickles = []

        def factory():
            pickles.append(1)
            return b"blob-one"

        first = shipper.prepare("fp-1", factory)
        assert first.blob == b"blob-one"
        steady = shipper.prepare("fp-1", factory)
        assert steady.blob is None
        assert len(pickles) == 1  # steady state skips the pickling too
        changed = shipper.prepare("fp-2", lambda: b"blob-two")
        assert changed.blob == b"blob-two"
        assert shipper.blob_ships == 2

    def test_refetch_reships_held_blob(self):
        shipper = StateShipper()
        shipper.prepare("fp-1", lambda: b"blob-one")
        refetch = shipper.refetch("fp-1")
        assert refetch.blob == b"blob-one"
        with pytest.raises(StateMissError):
            shipper.refetch("fp-other")

    def test_events_and_counters(self):
        bus = EventBus()
        topics = []
        bus.subscribe(lambda e: topics.append(e.topic))
        shipper = StateShipper(events=bus)
        shipment = shipper.prepare("fp-1", lambda: b"blob")
        shipper.count_task(shipment)
        steady = shipper.prepare("fp-1", lambda: b"blob")
        shipper.count_task(steady)
        shipper.record_hit(tenant="a")
        shipper.record_miss(tenant="b")
        shipper.refetch("fp-1")
        assert topics == [
            "backend.state_shipped_bytes",
            "backend.state_hit",
            "backend.state_miss",
            "backend.state_shipped_bytes",
        ]
        report = shipper.report()
        assert report["blob_ships"] == 2
        assert report["fingerprint_tasks"] == 1
        assert report["state_hits"] == 1
        assert report["state_misses"] == 1
        assert report["payload_bytes"] == (len("fp-1") + 4) + len("fp-1")


class TestPersistentPool:
    def test_persistent_pool_reused_across_calls(self):
        with ProcessPoolBackend(workers=2) as backend:
            backend.map_tasks(square, [1, 2, 3])
            backend.map_tasks(square, [4, 5, 6])
            assert backend.persistent
            assert backend.map_calls == 2
            assert backend.pools_created == 1

    def test_teardown_mode_rebuilds_per_call(self):
        backend = ProcessPoolBackend(workers=2, persistent=False)
        backend.map_tasks(square, [1, 2, 3])
        assert backend._executor is None  # torn down eagerly
        backend.map_tasks(square, [4, 5, 6])
        assert backend.pools_created == 2

    def test_warm_prespawns_the_persistent_pool(self):
        with ProcessPoolBackend(workers=2) as backend:
            backend.warm()
            assert backend.pools_created == 1
            backend.map_tasks(square, [1, 2, 3])
            assert backend.pools_created == 1

    def test_warm_is_a_noop_for_serial_width(self):
        backend = ProcessPoolBackend(workers=1)
        backend.warm()
        assert backend.pools_created == 0


class TestServeStateShipping:
    SERIES = {"a": [0.30, 0.30, 0.30, 0.30], "b": [0.30, 0.30, 0.30, 0.30]}

    def test_bit_identity_across_pool_modes(self, cassandra, tiny_surrogate):
        series = {"a": [0.20, 0.62], "b": [0.62, 0.80], "c": [0.47, 0.62]}
        ref_rafiki = make_rafiki(cassandra, tiny_surrogate)
        ref = serve(cassandra, ref_rafiki, series)
        for backend in (
            SerialBackend(),
            ProcessPoolBackend(workers=2),                   # persistent pool
            ProcessPoolBackend(workers=2, persistent=False),  # cold pool/round
        ):
            rafiki = make_rafiki(cassandra, tiny_surrogate)
            got = serve(cassandra, rafiki, series, backend=backend)
            assert got[0] == ref[0]
            assert got[1] == ref[1]
            assert rafiki_state(rafiki) == rafiki_state(ref_rafiki)
            backend.close()

    def test_steady_state_ships_fingerprints_only(self, cassandra, tiny_surrogate):
        backend = ProcessPoolBackend(workers=2)
        _, log, scheduler = serve(
            cassandra,
            make_rafiki(cassandra, tiny_surrogate),
            dict(self.SERIES),
            backend=backend,
        )
        backend.close()
        report = scheduler.state_report()
        # Round 0 ships the initial blob; round 1 ships again (the 0.30
        # search grew the cache and burned a seed stream); rounds 2-3
        # are steady state — fingerprint-only tasks, plus one refetch
        # per worker that happened never to have held the blob.
        assert report["fingerprint_tasks"] == 4
        assert report["state_hits"] + report["state_misses"] == 4
        assert report["blob_ships"] == 2 + report["state_misses"]
        # Steady-state savings: the payload that actually travelled is a
        # fraction of what ship-every-task would have cost.
        full_cost = report["blob_ships"] and (
            report["blob_bytes"] // report["blob_ships"]
        ) * (report["blob_ships"] + report["fingerprint_tasks"])
        assert report["payload_bytes"] < full_cost

    def test_worker_restart_misses_then_refetches(self, cassandra, tiny_surrogate):
        series = {"a": [0.30, 0.30, 0.30], "b": [0.30, 0.30, 0.30]}
        ref = serve(
            cassandra, make_rafiki(cassandra, tiny_surrogate), dict(series)
        )
        backend = ProcessPoolBackend(workers=2)

        def kill_pool_after_round_1(event):
            if event.payload.get("window") == 1:
                backend.close()  # next round starts blob-less workers

        rafiki = make_rafiki(cassandra, tiny_surrogate)
        got = serve(
            cassandra,
            rafiki,
            dict(series),
            backend=backend,
            on_window=kill_pool_after_round_1,
        )
        backend.close()
        report = got[2].state_report()
        # Round 2's fingerprint-only tasks all landed on fresh workers.
        assert report["state_misses"] == 2
        assert backend.pools_created == 2
        # The refetch path must not cost bit-identity.
        assert got[0] == ref[0]
        assert got[1] == ref[1]
        assert rafiki_state(rafiki) == rafiki_state(ref[2].rafiki)

    def test_retrain_reships_the_blob(self, cassandra, tiny_surrogate):
        def perturb_after_round_1(rafiki):
            def on_window(event):
                if event.payload.get("window") == 1:
                    net = rafiki.surrogate.ensemble.networks[0]
                    net.weights[0] = net.weights[0] * 1.001

            return on_window

        ref_rafiki = make_rafiki(cassandra, tiny_surrogate)
        ref = serve(
            cassandra,
            ref_rafiki,
            dict(self.SERIES),
            on_window=perturb_after_round_1(ref_rafiki),
        )
        backend = ProcessPoolBackend(workers=2)
        rafiki = make_rafiki(cassandra, tiny_surrogate)
        got = serve(
            cassandra,
            rafiki,
            dict(self.SERIES),
            backend=backend,
            on_window=perturb_after_round_1(rafiki),
        )
        backend.close()
        report = got[2].state_report()
        # Ships: round 0 (initial), round 1 (cache grew), round 2 (the
        # perturbed ensemble = a retrain) — round 3 is steady again.
        assert report["blob_ships"] == 3 + report["state_misses"]
        assert got[0] == ref[0]
        assert got[1] == ref[1]
        assert rafiki_state(rafiki) == rafiki_state(ref_rafiki)

    def test_fingerprint_ignores_volatile_bookkeeping(
        self, cassandra, tiny_surrogate
    ):
        rafiki = make_rafiki(cassandra, tiny_surrogate)
        scheduler = MiddlewareScheduler(cassandra, rafiki, backend=SerialBackend())
        before = scheduler._state_fingerprint()
        # Cache hit/miss stats and surrogate wall-clock stats mutate on
        # every lookup without affecting any recommend() result.
        rafiki.cache.get(rafiki.cache.quantize(0.77))
        rafiki.predicted_throughput(0.5, cassandra.default_configuration())
        assert scheduler._state_fingerprint() == before
        # Decision-relevant changes do move it: a new cache entry...
        result = rafiki.recommend(0.5)
        after_search = scheduler._state_fingerprint()
        assert after_search != before
        # ...and retrained ensemble weights.
        net = rafiki.surrogate.ensemble.networks[0]
        net.weights[0] = net.weights[0] * 1.001
        assert scheduler._state_fingerprint() != after_search
        assert result is not None

    def test_state_report_requires_a_backend(self, cassandra, tiny_surrogate):
        rafiki = make_rafiki(cassandra, tiny_surrogate)
        assert MiddlewareScheduler(cassandra, rafiki).state_report() is None
        with MiddlewareScheduler(cassandra, rafiki, workers=2) as scheduler:
            assert scheduler.state_report() == {
                "blob_ships": 0,
                "blob_bytes": 0,
                "fingerprint_tasks": 0,
                "payload_bytes": 0,
                "state_hits": 0,
                "state_misses": 0,
            }
        # Exiting the context closed the scheduler-owned pool.
        assert scheduler.backend._executor is None
