import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.network import FeedForwardNetwork


@pytest.fixture
def net(rng):
    return FeedForwardNetwork([6, 14, 4, 1], rng=rng)


class TestConstruction:
    def test_paper_topology_weight_count(self, net):
        # (6+1)*14 + (14+1)*4 + (4+1)*1 = 98 + 60 + 5
        assert net.n_weights == 163

    def test_needs_two_layers(self):
        with pytest.raises(TrainingError):
            FeedForwardNetwork([4])

    def test_positive_sizes(self):
        with pytest.raises(TrainingError):
            FeedForwardNetwork([4, 0, 1])


class TestWeightVector:
    def test_round_trip(self, net):
        w = net.get_weights()
        net.set_weights(w * 2)
        assert np.allclose(net.get_weights(), w * 2)

    def test_wrong_size_rejected(self, net):
        with pytest.raises(TrainingError):
            net.set_weights(np.zeros(10))

    def test_clone_independent(self, net, rng):
        clone = net.clone()
        x = rng.standard_normal((5, 6))
        assert np.allclose(net.predict(x), clone.predict(x))
        clone.set_weights(clone.get_weights() + 1.0)
        assert not np.allclose(net.predict(x), clone.predict(x))

    def test_clone_copies_weights_bitwise(self, net):
        clone = net.clone()
        assert clone.layer_sizes == net.layer_sizes
        assert np.array_equal(clone.get_weights(), net.get_weights())
        # Copies, not views: mutating one side never leaks to the other.
        for a, b in zip(net.weights, clone.weights):
            assert not np.shares_memory(a, b)
        for a, b in zip(net.biases, clone.biases):
            assert not np.shares_memory(a, b)


class TestForward:
    def test_predict_shape(self, net, rng):
        assert net.predict(rng.standard_normal((7, 6))).shape == (7,)

    def test_predict_single_row(self, net, rng):
        assert net.predict(rng.standard_normal(6)).shape == (1,)

    def test_zero_weights_zero_output(self):
        net = FeedForwardNetwork([3, 4, 1], rng=np.random.default_rng(0))
        net.set_weights(np.zeros(net.n_weights))
        assert np.allclose(net.predict(np.ones((2, 3))), 0.0)

    def test_output_is_linear_in_last_layer(self, rng):
        net = FeedForwardNetwork([2, 3, 1], rng=rng)
        w = net.get_weights()
        x = rng.standard_normal((4, 2))
        y1 = net.predict(x)
        # Doubling the output layer weights doubles the output only if
        # the output unit is linear.
        w2 = w.copy()
        w2[-4:] *= 2  # last layer: 3 weights + 1 bias
        net.set_weights(w2)
        assert np.allclose(net.predict(x), 2 * y1)


class TestJacobian:
    def test_matches_finite_differences(self, rng):
        net = FeedForwardNetwork([4, 5, 3, 1], rng=rng)
        x = rng.standard_normal((6, 4))
        jac = net.jacobian(x)
        w0 = net.get_weights()
        eps = 1e-6
        for k in range(0, net.n_weights, 7):  # spot-check every 7th weight
            w = w0.copy()
            w[k] += eps
            net.set_weights(w)
            up = net.predict(x)
            w[k] -= 2 * eps
            net.set_weights(w)
            down = net.predict(x)
            net.set_weights(w0)
            fd = (up - down) / (2 * eps)
            assert np.allclose(jac[:, k], fd, atol=1e-6)

    def test_shape(self, net, rng):
        x = rng.standard_normal((9, 6))
        assert net.jacobian(x).shape == (9, net.n_weights)

    def test_multi_output_rejected(self, rng):
        net = FeedForwardNetwork([3, 4, 2], rng=rng)
        with pytest.raises(TrainingError):
            net.jacobian(rng.standard_normal((2, 3)))

    def test_different_inits_differ(self):
        a = FeedForwardNetwork([3, 4, 1], rng=np.random.default_rng(1))
        b = FeedForwardNetwork([3, 4, 1], rng=np.random.default_rng(2))
        assert not np.allclose(a.get_weights(), b.get_weights())


class TestForwardWithJacobian:
    def test_bit_identical_to_separate_calls(self, net, rng):
        """One combined pass == predict() then jacobian(), bitwise."""
        x = rng.standard_normal((11, 6))
        pred, jac = net.forward_with_jacobian(x)
        assert np.array_equal(pred, net.predict(x))
        assert np.array_equal(jac, net.jacobian(x))

    def test_single_row_input(self, net, rng):
        x = rng.standard_normal(6)
        pred, jac = net.forward_with_jacobian(x)
        assert pred.shape == (1,)
        assert jac.shape == (1, net.n_weights)

    def test_multi_output_rejected(self, rng):
        multi = FeedForwardNetwork([3, 4, 2], rng=rng)
        with pytest.raises(TrainingError):
            multi.forward_with_jacobian(rng.standard_normal((2, 3)))
