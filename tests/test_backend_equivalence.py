"""Serial/parallel equivalence: the repo's core invariant under the
runtime layer.

Every offline stage derives its per-task random streams *before*
submitting work to a backend, so a process pool must produce
bitwise-identical artifacts — dataset, ANOVA ranking, trained-ensemble
predictions, and the full pipeline's recommended configuration — to a
serial run under the same seed.
"""

import numpy as np
import pytest

from repro.bench.collection import DataCollectionCampaign
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.core.anova import rank_parameters
from repro.core.rafiki import RafikiPipeline
from repro.datastore import CassandraLike
from repro.ml.ensemble import EnsembleConfig, NetworkEnsemble
from repro.runtime import ProcessPoolBackend, SerialBackend
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=1_000_000)


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolBackend(workers=2) as backend:
        yield backend


class TestStageEquivalence:
    def test_collection_campaign_identical(self, cassandra, workload, pool):
        def run(backend):
            return DataCollectionCampaign(
                cassandra,
                workload,
                key_parameters=CASSANDRA_KEY_PARAMETERS,
                n_workloads=3,
                n_configurations=4,
                n_faulty=2,
                benchmark=YCSBBenchmark(cassandra, run_seconds=10),
                seed=11,
                backend=backend,
            ).run()

        serial = run(SerialBackend())
        parallel = run(pool)
        assert np.array_equal(serial.targets(), parallel.targets())
        assert np.array_equal(serial.features(), parallel.features())

    def test_anova_ranking_identical(self, cassandra, workload, pool):
        def run(backend):
            return rank_parameters(
                cassandra,
                workload,
                parameters=["compaction_method", "concurrent_writes", "concurrent_reads"],
                repeats=2,
                benchmark=YCSBBenchmark(cassandra, run_seconds=10),
                seed=7,
                backend=backend,
            )

        serial = run(SerialBackend())
        parallel = run(pool)
        assert serial.names() == parallel.names()
        for a, b in zip(serial, parallel):
            assert a.throughput_std == b.throughput_std
            assert a.level_means == b.level_means
            assert a.p_value == b.p_value

    def test_trained_ensemble_identical(self, pool):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 1, size=(50, 4))
        y = 40_000 + 20_000 * np.sin(3 * x[:, 0]) + 5_000 * x[:, 1]

        def fit(backend):
            return NetworkEnsemble(EnsembleConfig(n_networks=4, max_epochs=20)).fit(
                x, y, seed=13, backend=backend
            )

        serial = fit(SerialBackend())
        parallel = fit(pool)
        assert np.array_equal(serial.predict(x), parallel.predict(x))
        assert [r.train_mse for r in serial.training_results] == [
            r.train_mse for r in parallel.training_results
        ]


class TestFullPipelineEquivalence:
    def test_same_seed_same_artifacts_across_backends(self, cassandra, workload, pool):
        """Acceptance: RafikiPipeline.run produces identical datasets,
        surrogates, and recommended configurations on both backends."""

        def run(backend):
            pipe = RafikiPipeline(
                cassandra,
                workload,
                benchmark=YCSBBenchmark(cassandra, run_seconds=10),
                ensemble_config=EnsembleConfig(n_networks=2, max_epochs=20),
                n_workloads=3,
                n_configurations=4,
                n_faulty=1,
                seed=21,
                backend=backend,
            )
            return pipe.run(key_parameters=CASSANDRA_KEY_PARAMETERS)

        rafiki_s, report_s = run(SerialBackend())
        rafiki_p, report_p = run(pool)

        assert np.array_equal(report_s.dataset.targets(), report_p.dataset.targets())
        probe = report_s.surrogate.encode(0.5, cassandra.default_configuration())[None, :]
        assert np.array_equal(
            report_s.surrogate.predict_features(probe),
            report_p.surrogate.predict_features(probe),
        )
        best_s = rafiki_s.recommend(0.8)
        best_p = rafiki_p.recommend(0.8)
        assert best_s.configuration == best_p.configuration
        assert best_s.predicted_throughput == best_p.predicted_throughput
