import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.keydist import (
    ExponentialReuseKeyDistribution,
    UniformKeyDistribution,
    ZipfianKeyDistribution,
)


class TestUniform:
    def test_keys_in_range(self, rng):
        dist = UniformKeyDistribution(100)
        assert all(0 <= dist.next_key(rng) < 100 for _ in range(200))

    def test_roughly_uniform(self, rng):
        dist = UniformKeyDistribution(10)
        counts = np.bincount([dist.next_key(rng) for _ in range(5000)], minlength=10)
        assert counts.min() > 300

    def test_invalid_keyspace(self):
        with pytest.raises(WorkloadError):
            UniformKeyDistribution(0)

    def test_key_name_sortable(self):
        dist = UniformKeyDistribution(10)
        assert dist.key_name(2) < dist.key_name(10)


class TestZipfian:
    def test_keys_in_range(self, rng):
        dist = ZipfianKeyDistribution(1000)
        assert all(0 <= dist.next_key(rng) < 1000 for _ in range(500))

    def test_skewed_toward_low_ids(self, rng):
        dist = ZipfianKeyDistribution(10_000)
        keys = [dist.next_key(rng) for _ in range(5000)]
        head = sum(1 for k in keys if k < 100)
        assert head > len(keys) * 0.3  # heavy head

    def test_theta_validated(self):
        with pytest.raises(WorkloadError):
            ZipfianKeyDistribution(100, theta=1.5)


class TestExponentialReuse:
    def test_keys_in_range(self, rng):
        dist = ExponentialReuseKeyDistribution(100, mean_reuse_distance=10)
        assert all(0 <= dist.next_key(rng) < 100 for _ in range(500))

    def test_small_krd_reuses_heavily(self, rng):
        dist = ExponentialReuseKeyDistribution(
            1_000_000, mean_reuse_distance=5, reuse_probability=1.0
        )
        keys = [dist.next_key(rng) for _ in range(2000)]
        assert len(set(keys)) < len(keys) * 0.5

    def test_huge_krd_rarely_reuses(self, rng):
        """The MG-RAST regime: reuse distance beyond any window."""
        dist = ExponentialReuseKeyDistribution(
            10**9, mean_reuse_distance=1e9, history_limit=1000
        )
        keys = [dist.next_key(rng) for _ in range(2000)]
        assert len(set(keys)) > len(keys) * 0.95

    def test_observed_distance_tracks_mean(self, rng):
        # Moderate reuse probability: cold draws keep fresh keys flowing
        # so reuse does not collapse onto a handful of hot keys.
        mean = 100.0
        dist = ExponentialReuseKeyDistribution(
            10**6, mean_reuse_distance=mean, reuse_probability=0.4
        )
        last_seen = {}
        distances = []
        for i in range(30_000):
            k = dist.next_key(rng)
            if k in last_seen:
                distances.append(i - last_seen[k] - 1)
            last_seen[k] = i
        observed = np.mean(distances)
        assert 0.2 * mean < observed < 2.5 * mean

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ExponentialReuseKeyDistribution(10, mean_reuse_distance=0)
        with pytest.raises(WorkloadError):
            ExponentialReuseKeyDistribution(10, 5.0, reuse_probability=1.5)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_always_valid_keys(self, seed):
        rng = np.random.default_rng(seed)
        dist = ExponentialReuseKeyDistribution(50, mean_reuse_distance=7)
        assert all(0 <= dist.next_key(rng) < 50 for _ in range(100))
