import numpy as np
import pytest

from repro.config.parameter import FloatParameter, IntegerParameter
from repro.config.space import ConfigurationSpace
from repro.errors import SearchError
from repro.ga.algorithm import GeneticAlgorithm
from repro.ga.constraints import penalized_fitness
from repro.ga.encoding import ConfigurationEncoder


@pytest.fixture
def quad_space():
    return ConfigurationSpace(
        "quad",
        [
            FloatParameter(name="x", default=0.0, low=-5.0, high=5.0),
            FloatParameter(name="y", default=0.0, low=-5.0, high=5.0),
        ],
    )


@pytest.fixture
def mixed_space():
    return ConfigurationSpace(
        "mixed",
        [
            IntegerParameter(name="n", default=0, low=-10, high=10),
            FloatParameter(name="x", default=0.0, low=-5.0, high=5.0),
        ],
    )


class TestPenalizedFitness:
    def test_feasible_passthrough(self):
        assert penalized_fitness(10.0, 0.0, 100.0) == 10.0

    def test_violation_penalized(self):
        assert penalized_fitness(10.0, 0.5, 100.0) == pytest.approx(-40.0)


class TestGeneticAlgorithm:
    def test_finds_continuous_optimum(self, quad_space):
        encoder = ConfigurationEncoder(quad_space, ["x", "y"])

        def fitness(genes):
            return -((genes[0] - 2.0) ** 2) - (genes[1] + 1.0) ** 2

        ga = GeneticAlgorithm(encoder, fitness, population_size=30, generations=60)
        result = ga.run(seed=0)
        assert result.best_configuration["x"] == pytest.approx(2.0, abs=0.3)
        assert result.best_configuration["y"] == pytest.approx(-1.0, abs=0.3)

    def test_integer_parameter_feasible_result(self, mixed_space):
        encoder = ConfigurationEncoder(mixed_space, ["n", "x"])

        def fitness(genes):
            return -((genes[0] - 3.3) ** 2) - genes[1] ** 2

        ga = GeneticAlgorithm(encoder, fitness, population_size=30, generations=60)
        result = ga.run(seed=1)
        assert isinstance(result.best_configuration["n"], int)
        assert result.best_configuration["n"] == 3  # nearest feasible to 3.3

    def test_multimodal_escapes_local_optimum(self, quad_space):
        """The paper's motivation for GA over greedy: local maxima."""
        encoder = ConfigurationEncoder(quad_space, ["x", "y"])

        def fitness(genes):
            x, y = genes
            # Global max at (4, 4) with a decoy at (-3, -3).
            good = 10.0 * np.exp(-((x - 4) ** 2 + (y - 4) ** 2))
            decoy = 6.0 * np.exp(-((x + 3) ** 2 + (y + 3) ** 2))
            return float(good + decoy)

        ga = GeneticAlgorithm(encoder, fitness, population_size=60, generations=80)
        result = ga.run(seed=2)
        assert result.best_configuration["x"] > 2.0

    def test_evaluation_budget_matches_paper_scale(self, quad_space):
        """§4.8: ~3,350 surrogate calls per search."""
        encoder = ConfigurationEncoder(quad_space, ["x", "y"])
        ga = GeneticAlgorithm(
            encoder, lambda g: float(-(g**2).sum()), stagnation_limit=10**9
        )
        result = ga.run(seed=0)
        assert 1_000 < result.evaluations < 8_000

    def test_history_monotone(self, quad_space):
        encoder = ConfigurationEncoder(quad_space, ["x", "y"])
        ga = GeneticAlgorithm(encoder, lambda g: float(-(g**2).sum()), generations=20)
        result = ga.run(seed=3)
        assert all(b >= a - 1e-9 for a, b in zip(result.history, result.history[1:]))

    def test_early_stop_on_stagnation(self, quad_space):
        encoder = ConfigurationEncoder(quad_space, ["x", "y"])
        ga = GeneticAlgorithm(
            encoder, lambda g: 1.0, generations=500, stagnation_limit=5
        )
        result = ga.run(seed=4)
        assert result.generations < 500

    def test_seeded_initial_population(self, quad_space):
        encoder = ConfigurationEncoder(quad_space, ["x", "y"])

        def fitness(genes):
            return -((genes[0] - 2.0) ** 2) - genes[1] ** 2

        seed_cfg = quad_space.configuration(x=2.0, y=0.0)
        ga = GeneticAlgorithm(encoder, fitness, population_size=10, generations=3)
        result = ga.run(seed=5, initial=[encoder.encode(seed_cfg)])
        assert result.best_fitness == pytest.approx(0.0, abs=0.1)

    def test_deterministic_per_seed(self, quad_space):
        encoder = ConfigurationEncoder(quad_space, ["x", "y"])

        def fitness(genes):
            return float(-(genes**2).sum())

        a = GeneticAlgorithm(encoder, fitness, generations=10).run(seed=7)
        b = GeneticAlgorithm(encoder, fitness, generations=10).run(seed=7)
        assert a.best_fitness == b.best_fitness
        assert a.best_configuration == b.best_configuration

    def test_parameter_validation(self, quad_space):
        encoder = ConfigurationEncoder(quad_space, ["x", "y"])
        with pytest.raises(SearchError):
            GeneticAlgorithm(encoder, lambda g: 0.0, population_size=2)
        with pytest.raises(SearchError):
            GeneticAlgorithm(encoder, lambda g: 0.0, generations=0)
        with pytest.raises(SearchError):
            GeneticAlgorithm(encoder, lambda g: 0.0, elites=100)
