import numpy as np

from repro.workload.generator import Operation, OperationGenerator
from repro.workload.spec import DELETE, READ, WRITE, WorkloadSpec


def make_gen(rr=0.5, seed=0, **kw):
    spec = WorkloadSpec(read_ratio=rr, n_keys=10_000, krd_mean_ops=100.0, **kw)
    return OperationGenerator(spec, np.random.default_rng(seed), loaded_keys=1000)


class TestLoadPhase:
    def test_load_is_sequential_inserts(self):
        gen = make_gen()
        ops = list(gen.load_operations(10))
        assert all(op.kind == WRITE for op in ops)
        assert len({op.key for op in ops}) == 10

    def test_load_continues_key_sequence(self):
        gen = make_gen()
        first = list(gen.load_operations(5))
        second = list(gen.load_operations(5))
        assert set(o.key for o in first).isdisjoint(o.key for o in second)


class TestRunPhase:
    def test_read_ratio_approximated(self):
        gen = make_gen(rr=0.7)
        ops = list(gen.operations(5000))
        reads = sum(1 for op in ops if op.kind == READ)
        assert 0.65 < reads / len(ops) < 0.75

    def test_pure_writes(self):
        gen = make_gen(rr=0.0)
        assert all(op.kind == WRITE for op in gen.operations(200))

    def test_pure_reads(self):
        gen = make_gen(rr=1.0)
        assert all(op.kind == READ for op in gen.operations(200))

    def test_deletes_generated(self):
        gen = make_gen(rr=0.5, delete_fraction=0.2)
        kinds = [op.kind for op in gen.operations(3000)]
        assert kinds.count(DELETE) > 0

    def test_updates_vs_inserts(self):
        all_updates = make_gen(rr=0.0, update_fraction=1.0)
        ops = list(all_updates.operations(500))
        # Pure updates only touch the already-loaded range.
        assert len({op.key for op in ops}) <= 1000

        all_inserts = make_gen(rr=0.0, update_fraction=0.0)
        ops = list(all_inserts.operations(500))
        assert len({op.key for op in ops}) == 500

    def test_write_ops_carry_value_size(self):
        gen = make_gen(rr=0.0, value_bytes=99)
        op = next(iter(gen))
        assert op.value_bytes == 99

    def test_payload_matches_size(self):
        rng = np.random.default_rng(0)
        op = Operation(kind=WRITE, key="k", value_bytes=44)
        assert len(op.payload(rng)) == 44

    def test_read_payload_empty(self):
        rng = np.random.default_rng(0)
        assert Operation(kind=READ, key="k").payload(rng) == b""

    def test_deterministic_given_seed(self):
        a = [op.key for op in make_gen(seed=9).operations(100)]
        b = [op.key for op in make_gen(seed=9).operations(100)]
        assert a == b

    def test_reads_target_existing_keys(self):
        gen = make_gen(rr=1.0)
        for op in gen.operations(300):
            assert int(op.key[4:]) < 1000
