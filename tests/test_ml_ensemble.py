import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.ensemble import EnsembleConfig, NetworkEnsemble


def toy_problem(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 4))
    y = 50_000 + 30_000 * np.sin(3 * x[:, 0]) + 10_000 * x[:, 1] * x[:, 2]
    return x, y


class TestEnsembleConfig:
    def test_paper_defaults(self):
        cfg = EnsembleConfig()
        assert cfg.n_networks == 20
        assert cfg.prune_fraction == pytest.approx(0.30)
        assert tuple(cfg.hidden_layers) == (14, 4)
        assert cfg.max_epochs == 200

    def test_validation(self):
        with pytest.raises(TrainingError):
            EnsembleConfig(n_networks=0)
        with pytest.raises(TrainingError):
            EnsembleConfig(prune_fraction=1.0)


class TestNetworkEnsemble:
    def test_paper_pruning_20_to_14(self):
        """§3.6.2: 20 networks, worst 30% pruned -> average of 14."""
        x, y = toy_problem(n=60)
        ens = NetworkEnsemble(EnsembleConfig(n_networks=20, max_epochs=15))
        ens.fit(x, y, seed=0)
        assert ens.active_count == 14
        assert ens.pruned_count == 6

    def test_pruning_keeps_best(self):
        x, y = toy_problem(n=80)
        ens = NetworkEnsemble(EnsembleConfig(n_networks=6, max_epochs=20))
        ens.fit(x, y, seed=1)
        kept_errors = [r.train_mse for r in ens.training_results]
        assert kept_errors == sorted(kept_errors)

    def test_predict_original_units(self):
        x, y = toy_problem()
        ens = NetworkEnsemble(EnsembleConfig(n_networks=4, max_epochs=60))
        ens.fit(x, y, seed=2)
        pred = ens.predict(x)
        assert pred.shape == y.shape
        assert abs(pred.mean() - y.mean()) / y.mean() < 0.2

    def test_predict_single_row(self):
        x, y = toy_problem()
        ens = NetworkEnsemble(EnsembleConfig(n_networks=3, max_epochs=30))
        ens.fit(x, y, seed=3)
        out = ens.predict(x[0])
        assert isinstance(out, float)

    def test_predict_std_nonnegative(self):
        x, y = toy_problem()
        ens = NetworkEnsemble(EnsembleConfig(n_networks=4, max_epochs=30))
        ens.fit(x, y, seed=3)
        assert (ens.predict_std(x) >= 0).all()

    def test_use_before_fit(self):
        ens = NetworkEnsemble(EnsembleConfig(n_networks=2))
        with pytest.raises(TrainingError):
            ens.predict(np.ones((2, 3)))
        with pytest.raises(TrainingError):
            ens.predict_std(np.ones((2, 3)))

    def test_fit_deterministic_per_seed(self):
        x, y = toy_problem(n=60)
        a = NetworkEnsemble(EnsembleConfig(n_networks=3, max_epochs=20)).fit(x, y, seed=9)
        b = NetworkEnsemble(EnsembleConfig(n_networks=3, max_epochs=20)).fit(x, y, seed=9)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_bad_shapes(self):
        ens = NetworkEnsemble(EnsembleConfig(n_networks=2))
        with pytest.raises(TrainingError):
            ens.fit(np.ones((5, 2)), np.ones(4))
