import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.characterize import (
    characterize_trace,
    fit_exponential_krd,
    read_ratio_windows,
    rr_stationarity_score,
)
from repro.workload.mgrast import MGRastTraceGenerator
from repro.workload.spec import READ, WRITE
from repro.workload.trace import QueryRecord, Trace


def trace_with_rr(rr, n=1000, keys=20, seed=0):
    rng = np.random.default_rng(seed)
    return Trace(
        [
            QueryRecord(
                timestamp=float(i),
                kind=READ if rng.random() < rr else WRITE,
                key=f"k{rng.integers(keys)}",
            )
            for i in range(n)
        ]
    )


class TestReadRatioWindows:
    def test_constant_rr_recovered(self):
        trace = trace_with_rr(0.8, n=2000)
        ratios = read_ratio_windows(trace, window_seconds=500)
        assert all(abs(r - 0.8) < 0.1 for r in ratios)

    def test_step_change_detected(self):
        reads = [QueryRecord(float(i), READ, f"k{i%5}") for i in range(500)]
        writes = [QueryRecord(500.0 + i, WRITE, f"k{i%5}") for i in range(500)]
        ratios = read_ratio_windows(Trace(reads + writes), window_seconds=250)
        assert ratios[0] > 0.9 and ratios[-1] < 0.1

    def test_empty_window_carries_forward(self):
        records = [QueryRecord(0.0, READ, "a"), QueryRecord(1000.0, READ, "b")]
        ratios = read_ratio_windows(Trace(records), window_seconds=100)
        assert all(r == 1.0 for r in ratios)


class TestKrdFit:
    def test_mle_is_sample_mean(self):
        records = [
            QueryRecord(0.0, READ, "a"),
            QueryRecord(1.0, READ, "b"),
            QueryRecord(2.0, READ, "a"),  # distance 1
            QueryRecord(3.0, READ, "b"),  # distance 1
            QueryRecord(4.0, READ, "a"),  # distance 1
        ]
        scale, n = fit_exponential_krd(Trace(records))
        assert scale == pytest.approx(1.0)
        assert n == 3

    def test_no_reuse_raises(self):
        records = [QueryRecord(float(i), READ, f"unique{i}") for i in range(10)]
        with pytest.raises(WorkloadError):
            fit_exponential_krd(Trace(records))

    def test_recovers_generator_scale(self):
        gen = MGRastTraceGenerator(
            seed=5, queries_per_window=2000, krd_mean_ops=50.0, n_keys=10**6
        )
        trace = gen.generate(duration_seconds=3600)
        scale, n = fit_exponential_krd(trace)
        assert n > 100
        assert 10.0 < scale < 250.0  # right order of magnitude


class TestStationarity:
    def test_stationary_trace_low_score(self):
        trace = trace_with_rr(0.5, n=4000)
        score = rr_stationarity_score(trace, window_seconds=500)
        assert score < 0.1

    def test_oscillating_trace_high_score(self):
        # RR flips every 100s; a 400s window mixes regimes badly.
        records = []
        for i in range(4000):
            kind = READ if (i // 100) % 2 == 0 else WRITE
            records.append(QueryRecord(float(i), kind, f"k{i % 7}"))
        score = rr_stationarity_score(Trace(records), window_seconds=400)
        assert score > 0.2

    def test_too_short_raises(self):
        with pytest.raises(WorkloadError):
            rr_stationarity_score(trace_with_rr(0.5, n=4), window_seconds=1.0)


class TestCharacterizeTrace:
    def test_full_characterization(self):
        gen = MGRastTraceGenerator(seed=9, queries_per_window=500, krd_mean_ops=100.0)
        trace = gen.generate(duration_seconds=4 * 3600)
        ch = characterize_trace(trace)
        assert ch.n_windows == 16
        assert all(0.0 <= r <= 1.0 for r in ch.read_ratios)
        assert ch.krd_mean_ops > 0
        assert 0.0 <= ch.overall_read_ratio <= 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            characterize_trace(Trace([]))

    def test_window_spec_roundtrip(self):
        trace = trace_with_rr(0.6, n=3000)
        ch = characterize_trace(trace, window_seconds=1000)
        spec = ch.window_spec(0)
        assert spec.read_ratio == ch.read_ratios[0]
        assert spec.krd_mean_ops == ch.krd_mean_ops
