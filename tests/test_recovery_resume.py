"""Kill-anywhere resume: campaigns and ensemble fits (Issue 4 tentpole).

A "kill after k samples" is simulated by truncating a copy of the
campaign journal to its first ``k`` records — exactly the durable state
a SIGKILLed process leaves (the WAL fsyncs every append) — and resuming
from the copy.  The property under test: the resumed artifact is
*bit-identical* to the uninterrupted one, for every kill point.
"""

import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.collection import DataCollectionCampaign
from repro.bench.dataset import load_dataset, save_dataset
from repro.bench.ycsb import YCSBBenchmark
from repro.config import CASSANDRA_KEY_PARAMETERS
from repro.datastore import CassandraLike
from repro.errors import PersistenceError
from repro.faults.plan import BenchFault, FaultPlan
from repro.ml.ensemble import EnsembleConfig, NetworkEnsemble
from repro.recovery.checkpoint import member_checkpoint_path
from repro.runtime.events import EventBus
from repro.workload.spec import mgrast_workload

PARAMS = list(CASSANDRA_KEY_PARAMETERS)
N_WORKLOADS = 3
N_CONFIGS = 3
TOTAL = N_WORKLOADS * N_CONFIGS


def make_campaign(journal=None, events=None, retry_faulty=0, fault_plan=None):
    datastore = CassandraLike()
    return DataCollectionCampaign(
        datastore,
        mgrast_workload(0.5),
        key_parameters=PARAMS,
        n_workloads=N_WORKLOADS,
        n_configurations=N_CONFIGS,
        n_faulty=1,
        benchmark=YCSBBenchmark(datastore, run_seconds=30.0),
        seed=11,
        events=events,
        retry_faulty=retry_faulty,
        fault_plan=fault_plan,
        journal=journal,
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted journaled campaign: (dataset_json, journal_path)."""
    root = tmp_path_factory.mktemp("reference")
    journal = root / "campaign.wal"
    dataset = make_campaign(journal=journal).run()
    return dataset.to_json(), journal


def truncate_journal(src, dst, k):
    """Copy ``src`` keeping the header and the first ``k`` records."""
    lines = src.read_text().splitlines(keepends=True)
    dst.write_text("".join(lines[: 1 + k]))


class TestCampaignResume:
    @settings(max_examples=6, deadline=None)
    @given(k=st.integers(min_value=0, max_value=TOTAL - 1))
    def test_kill_after_k_samples_resumes_bit_identical(
        self, reference, tmp_path_factory, k
    ):
        ref_json, ref_journal = reference
        root = tmp_path_factory.mktemp("kill")
        partial = root / "campaign.wal"
        truncate_journal(ref_journal, partial, k)
        resumed = make_campaign(journal=partial).run()
        assert resumed.to_json() == ref_json

    def test_kill_mid_append_resumes_bit_identical(
        self, reference, tmp_path
    ):
        ref_json, ref_journal = reference
        partial = tmp_path / "campaign.wal"
        lines = ref_journal.read_text().splitlines(keepends=True)
        torn = lines[4][: len(lines[4]) // 2]  # record 4 torn mid-line
        partial.write_text("".join(lines[:4]) + torn)
        resumed = make_campaign(journal=partial).run()
        assert resumed.to_json() == ref_json

    def test_fully_journaled_campaign_runs_no_benchmarks(
        self, reference, tmp_path
    ):
        ref_json, ref_journal = reference
        complete = tmp_path / "campaign.wal"
        shutil.copy(ref_journal, complete)
        events = EventBus()
        seen = []
        events.subscribe(seen.append, topic="recovery.resumed")
        campaign = make_campaign(journal=complete, events=events)
        campaign.benchmark.run = None  # any benchmark call would raise
        assert campaign.run().to_json() == ref_json
        assert seen[0].payload["resumed"] == TOTAL

    def test_resumed_event_reports_count(self, reference, tmp_path):
        _, ref_journal = reference
        partial = tmp_path / "campaign.wal"
        truncate_journal(ref_journal, partial, 5)
        events = EventBus()
        seen = []
        events.subscribe(seen.append, topic="recovery.resumed")
        make_campaign(journal=partial, events=events).run()
        assert seen[0].payload["resumed"] == 5
        assert seen[0].payload["total"] == TOTAL

    def test_journal_from_different_campaign_refused(self, reference, tmp_path):
        _, ref_journal = reference
        stolen = tmp_path / "campaign.wal"
        shutil.copy(ref_journal, stolen)
        campaign = make_campaign(journal=stolen)
        campaign.seeds = type(campaign.seeds)(999)  # different root seed
        with pytest.raises(PersistenceError, match="different run"):
            campaign.run()

    def test_dataset_artifact_round_trip(self, reference, tmp_path):
        ref_json, ref_journal = reference
        dataset = make_campaign(journal=None).run()
        path = tmp_path / "dataset.json"
        save_dataset(dataset, path)
        restored = load_dataset(path, CassandraLike().space)
        assert restored.to_json() == dataset.to_json() == ref_json


class TestCampaignRetryResume:
    def persistent_plan(self):
        return FaultPlan(
            bench_faults=(BenchFault(index=2, degradation=0.3, transient=False),)
        )

    def test_retry_attempts_resume_from_journal(self, tmp_path):
        ref_journal = tmp_path / "ref.wal"
        ref = make_campaign(
            journal=ref_journal, retry_faulty=1, fault_plan=self.persistent_plan()
        ).run_raw()
        # Kill after the whole grid but before any retry landed: keep
        # only the attempt-0 records.
        lines = ref_journal.read_text().splitlines(keepends=True)
        kept = [lines[0]] + [ln for ln in lines[1:] if '"attempt":0' in ln]
        partial = tmp_path / "partial.wal"
        partial.write_text("".join(kept))
        resumed = make_campaign(
            journal=partial, retry_faulty=1, fault_plan=self.persistent_plan()
        ).run_raw()
        assert [r.mean_throughput for r in resumed] == [
            r.mean_throughput for r in ref
        ]
        assert [r.faulty for r in resumed] == [r.faulty for r in ref]


class TestEnsembleResume:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(24, 3))
        y = x @ np.array([1.0, -2.0, 0.5]) + rng.normal(0, 0.1, size=24)
        return x, y

    @pytest.fixture(scope="class")
    def config(self):
        return EnsembleConfig(hidden_layers=(4,), n_networks=4, max_epochs=30)

    @pytest.fixture(scope="class")
    def reference_fit(self, data, config, tmp_path_factory):
        x, y = data
        ckpt = tmp_path_factory.mktemp("ckpt-ref")
        ensemble = NetworkEnsemble(config).fit(x, y, seed=7, checkpoint_dir=ckpt)
        return ensemble, ckpt

    @settings(max_examples=4, deadline=None)
    @given(m=st.integers(min_value=0, max_value=3))
    def test_kill_after_m_members_resumes_bitwise_identical(
        self, data, config, reference_fit, tmp_path_factory, m
    ):
        x, y = data
        ref, ref_ckpt = reference_fit
        ckpt = tmp_path_factory.mktemp("ckpt-kill")
        for member in range(m):  # the m members finished before the kill
            shutil.copy(
                member_checkpoint_path(ref_ckpt, member),
                member_checkpoint_path(ckpt, member),
            )
        resumed = NetworkEnsemble(config).fit(x, y, seed=7, checkpoint_dir=ckpt)
        assert len(resumed.networks) == len(ref.networks)
        for a, b in zip(resumed.networks, ref.networks):
            assert np.array_equal(a.get_weights(), b.get_weights())
        assert [r.train_mse for r in resumed.training_results] == [
            r.train_mse for r in ref.training_results
        ]

    def test_resume_emits_event(self, data, config, reference_fit):
        x, y = data
        _, ref_ckpt = reference_fit
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="recovery.resumed")
        NetworkEnsemble(config).fit(
            x, y, seed=7, checkpoint_dir=ref_ckpt, events=bus
        )
        assert seen[0].payload["resumed"] == 4

    def test_corrupt_checkpoint_is_reported_and_retrained(
        self, data, config, reference_fit, tmp_path
    ):
        x, y = data
        ref, ref_ckpt = reference_fit
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        for member in range(4):
            shutil.copy(
                member_checkpoint_path(ref_ckpt, member),
                member_checkpoint_path(ckpt, member),
            )
        bad = member_checkpoint_path(ckpt, 1)
        bad.write_text(bad.read_text()[:-20])
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="recovery.corrupt_artifact")
        resumed = NetworkEnsemble(config).fit(
            x, y, seed=7, checkpoint_dir=ckpt, events=bus
        )
        assert seen  # the damage was noticed, not silently trusted
        for a, b in zip(resumed.networks, ref.networks):
            assert np.array_equal(a.get_weights(), b.get_weights())

    def test_rescaled_data_standardizes_identically_and_resumes(
        self, data, config, reference_fit
    ):
        # Standardization makes x*2 the same training problem, so its
        # fingerprint matches and the checkpoints are legitimately
        # reusable — resuming here is correct, not a false positive.
        x, y = data
        _, ref_ckpt = reference_fit
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="recovery.resumed")
        NetworkEnsemble(config).fit(
            x * 2.0, y, seed=7, checkpoint_dir=ref_ckpt, events=bus
        )
        assert seen and seen[0].payload["resumed"] == 4

    def test_stale_checkpoints_ignored_on_different_seed(
        self, data, config, reference_fit, tmp_path
    ):
        x, y = data
        _, ref_ckpt = reference_fit
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        for member in range(4):
            shutil.copy(
                member_checkpoint_path(ref_ckpt, member),
                member_checkpoint_path(ckpt, member),
            )
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, topic="recovery.resumed")
        NetworkEnsemble(config).fit(x, y, seed=8, checkpoint_dir=ckpt, events=bus)
        assert seen == []  # member seeds differ: nothing resumed
