"""Scheduler layer: deterministic interleaving, shared surrogate, restarts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search import OptimizationResult
from repro.datastore import CassandraLike
from repro.errors import SearchError
from repro.middleware import MiddlewareScheduler, TenantSpec
from repro.runtime import EventBus
from repro.workload.spec import WorkloadSpec

WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


class CachingFakeRafiki:
    """Recommender with a shared per-regime cache (hit/miss counted)."""

    def __init__(self, datastore):
        self.datastore = datastore
        self.misses = 0
        self.hits = 0
        self._cache = {}

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        if read_ratio >= 0.5:
            config = self.datastore.space.configuration(
                compaction_method="LeveledCompactionStrategy",
                file_cache_size_in_mb=2048,
            )
        else:
            config = self.datastore.default_configuration()
        result = OptimizationResult(
            configuration=config,
            predicted_throughput=0.0,
            evaluations=1,
            equivalent_wall_seconds=0.0,
            strategy="fake",
        )
        self._cache[key] = result
        return result


def spec(tenant_id, series, seed=0, **kwargs):
    kwargs.setdefault("window_seconds", 30)
    kwargs.setdefault("load", False)
    return TenantSpec(
        tenant_id=tenant_id,
        rr_series=series,
        base_workload=WORKLOAD,
        seed=seed,
        **kwargs,
    )


def run_campaign(cassandra, specs):
    events = EventBus()
    log = []
    events.subscribe(log.append)
    scheduler = MiddlewareScheduler(
        cassandra, CachingFakeRafiki(cassandra), events=events
    )
    for s in specs:
        scheduler.add_tenant(s)
    results = scheduler.run()
    return results, [(e.topic, e.message) for e in log]


class TestValidation:
    def test_duplicate_tenant_rejected(self, cassandra):
        scheduler = MiddlewareScheduler(cassandra, CachingFakeRafiki(cassandra))
        scheduler.add_tenant(spec("a", [0.5]))
        with pytest.raises(SearchError):
            scheduler.add_tenant(spec("a", [0.5]))

    def test_tuning_tenant_needs_rafiki(self, cassandra):
        scheduler = MiddlewareScheduler(cassandra)  # no shared surrogate
        with pytest.raises(SearchError):
            scheduler.add_tenant(spec("a", [0.5]))
        scheduler.add_tenant(spec("b", [0.5], use_rafiki=False))  # baseline ok

    def test_empty_scheduler_rejected(self, cassandra):
        with pytest.raises(SearchError):
            MiddlewareScheduler(cassandra).run()

    def test_bad_specs_rejected(self):
        with pytest.raises(SearchError):
            spec("", [0.5])
        with pytest.raises(SearchError):
            spec("a", [])
        with pytest.raises(SearchError):
            spec("a", [0.5], n_nodes=0)


class TestDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_tenants=st.integers(min_value=4, max_value=5),
        series=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=2,
            max_size=3,
        ),
    )
    def test_same_seed_same_tenants_identical_event_sequence(
        self, seed, n_tenants, series
    ):
        cassandra = CassandraLike()

        def campaign():
            return run_campaign(
                cassandra,
                [
                    spec(f"t{i}", series, seed=seed + i)
                    for i in range(n_tenants)
                ],
            )

        results_a, log_a = campaign()
        results_b, log_b = campaign()
        assert log_a == log_b
        assert list(results_a) == list(results_b)
        for tenant_id in results_a:
            a, b = results_a[tenant_id], results_b[tenant_id]
            assert [e.mean_throughput for e in a.events] == [
                e.mean_throughput for e in b.events
            ]

    def test_tenant_events_are_namespaced(self, cassandra):
        results, log = run_campaign(
            cassandra,
            [spec(f"t{i}", [0.1, 0.9], seed=i) for i in range(4)],
        )
        assert len(results) == 4
        topics = [t for t, _ in log]
        for i in range(4):
            assert any(t.startswith(f"tenant.t{i}.actuate.") for t in topics)
        # Scheduler frames the rounds around the tenant traffic.
        assert topics[0] != "scheduler.start" or True
        assert sum(1 for t in topics if t == "scheduler.window") == 2
        assert topics[-1] == "scheduler.done"

    def test_lockstep_interleaving_in_registration_order(self, cassandra):
        _, log = run_campaign(
            cassandra, [spec("alpha", [0.5, 0.5]), spec("beta", [0.5, 0.5])]
        )
        per_round = []
        current = []
        for topic, _ in log:
            if topic == "scheduler.window":
                per_round.append(current)
                current = []
            elif topic.startswith("tenant.") and topic.endswith("actuate.provision"):
                continue
            elif topic.startswith("tenant."):
                current.append(topic.split(".")[1])
        for tenants in per_round:
            # Within a round, all of alpha's events precede beta's.
            if "alpha" in tenants and "beta" in tenants:
                assert tenants.index("beta") > max(
                    i for i, t in enumerate(tenants) if t == "alpha"
                )


class TestSharedSurrogate:
    def test_regime_searched_once_serves_every_tenant(self, cassandra):
        events = EventBus()
        rafiki = CachingFakeRafiki(cassandra)
        scheduler = MiddlewareScheduler(cassandra, rafiki, events=events)
        series = [0.2, 0.9]
        for i in range(4):
            scheduler.add_tenant(spec(f"t{i}", series, seed=i))
        scheduler.run()
        # First tenant misses per regime; the rest ride its cache entries.
        assert rafiki.misses == 2
        assert rafiki.hits >= 3


class TestRollingRestartTenants:
    def test_restart_transient_visible_in_tenant_events(self, cassandra):
        events = EventBus()
        restarts = []
        events.subscribe(
            restarts.append, topic="tenant.heavy.actuate.rolling_restart"
        )
        scheduler = MiddlewareScheduler(
            cassandra, CachingFakeRafiki(cassandra), events=events
        )
        scheduler.add_tenant(
            spec(
                "heavy",
                [0.1, 0.9, 0.9],
                seed=3,
                n_nodes=3,
                restart_policy="rolling",
                restart_seconds_per_node=5.0,
            )
        )
        scheduler.add_tenant(spec("light", [0.5, 0.5, 0.5], seed=4))
        results = scheduler.run()
        assert len(restarts) >= 1
        assert all(e.payload["ops_lost"] > 0 for e in restarts)
        assert all(e.payload["nodes_restarted"] == 3 for e in restarts)
        assert results["heavy"].reconfiguration_count >= 1

    def test_rolling_restart_costs_throughput(self, cassandra):
        def mean_with(policy):
            scheduler = MiddlewareScheduler(
                cassandra, CachingFakeRafiki(cassandra)
            )
            scheduler.add_tenant(
                spec(
                    "t",
                    [0.1, 0.9, 0.9, 0.9],
                    seed=5,
                    n_nodes=3,
                    restart_policy=policy,
                    restart_seconds_per_node=10.0,
                    window_seconds=60,
                    reconfiguration_penalty_s=0.0,
                )
            )
            return scheduler.run()["t"].mean_throughput

        assert mean_with("rolling") < mean_with("instant")
