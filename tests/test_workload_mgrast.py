import numpy as np
import pytest

from repro.workload.mgrast import FOUR_DAYS_SECONDS, MGRastPhase, MGRastTraceGenerator
from repro.workload.trace import DEFAULT_WINDOW_SECONDS


@pytest.fixture
def gen():
    return MGRastTraceGenerator(seed=42, queries_per_window=200)


class TestReadRatioSeries:
    def test_four_day_window_count(self, gen):
        series = gen.read_ratio_series(FOUR_DAYS_SECONDS)
        assert len(series) == FOUR_DAYS_SECONDS // DEFAULT_WINDOW_SECONDS

    def test_values_are_ratios(self, gen):
        series = gen.read_ratio_series(24 * 3600)
        assert np.all((series >= 0.0) & (series <= 1.0))

    def test_exhibits_all_regimes(self, gen):
        """Figure 3: read-heavy, write-heavy, and mixed periods."""
        series = gen.read_ratio_series(FOUR_DAYS_SECONDS)
        assert (series > 0.7).any()
        assert (series < 0.3).any()
        assert ((series > 0.35) & (series < 0.65)).any()

    def test_abrupt_transitions_exist(self, gen):
        """§2.4.1: transitions are 'not smooth and often occur abruptly'."""
        series = gen.read_ratio_series(FOUR_DAYS_SECONDS)
        jumps = np.abs(np.diff(series))
        assert jumps.max() > 0.4

    def test_regimes_persist(self, gen):
        """Dwell times beyond a single window (extended periods)."""
        series = gen.read_ratio_series(FOUR_DAYS_SECONDS)
        small_moves = np.abs(np.diff(series)) < 0.15
        assert small_moves.mean() > 0.5

    def test_deterministic_per_seed(self):
        a = MGRastTraceGenerator(seed=1).read_ratio_series(24 * 3600)
        b = MGRastTraceGenerator(seed=1).read_ratio_series(24 * 3600)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = MGRastTraceGenerator(seed=1).read_ratio_series(24 * 3600)
        b = MGRastTraceGenerator(seed=2).read_ratio_series(24 * 3600)
        assert not np.array_equal(a, b)


class TestTraceGeneration:
    def test_record_count(self, gen):
        trace = gen.generate(duration_seconds=2 * 3600)
        windows = 2 * 3600 // DEFAULT_WINDOW_SECONDS
        assert len(trace) == windows * 200

    def test_records_time_ordered(self, gen):
        trace = gen.generate(duration_seconds=3600)
        times = [r.timestamp for r in trace]
        assert times == sorted(times)

    def test_mixed_kinds(self, gen):
        trace = gen.generate(duration_seconds=4 * 3600)
        kinds = {r.kind for r in trace}
        assert kinds == {"read", "write"}

    def test_window_rr_matches_series(self):
        gen = MGRastTraceGenerator(seed=7, queries_per_window=500)
        series = MGRastTraceGenerator(seed=7, queries_per_window=500).read_ratio_series(2 * 3600)
        trace = gen.generate(duration_seconds=2 * 3600)
        for (____, records), expected in zip(trace.windows(), series):
            observed = sum(1 for r in records if r.kind == "read") / len(records)
            assert observed == pytest.approx(expected, abs=0.1)

    def test_workload_specs_per_window(self, gen):
        specs = gen.workload_specs(duration_seconds=3 * 3600)
        assert len(specs) == 3 * 3600 // DEFAULT_WINDOW_SECONDS
        assert all(0.0 <= s.read_ratio <= 1.0 for s in specs)


class TestPhases:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            MGRastTraceGenerator(phases=[])

    def test_custom_phases_respected(self):
        only_writes = [MGRastPhase("writes", 0.05, 0.01, 3.0, 1.0)]
        gen = MGRastTraceGenerator(phases=only_writes, seed=0)
        series = gen.read_ratio_series(12 * 3600)
        assert series.max() < 0.2

    def test_default_phases_mostly_read_leaning(self):
        """MG-RAST is 'read-heavy most of the time' (§4.8)."""
        gen = MGRastTraceGenerator(seed=3)
        series = gen.read_ratio_series(FOUR_DAYS_SECONDS)
        assert series.mean() > 0.5
