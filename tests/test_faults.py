"""Fault plans and the injector: validation, determinism, application."""

import pytest

from repro.datastore import CassandraLike, Cluster
from repro.errors import FaultError, ReproError, TransientError
from repro.faults import (
    BenchFault,
    DiskSlowdown,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    TransientFault,
)
from repro.runtime import EventBus


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


def make_cluster(cassandra, n_nodes=3):
    return Cluster(
        cassandra,
        cassandra.default_configuration(),
        n_nodes=n_nodes,
        replication_factor=2,
        n_shooters=n_nodes,
        seed=7,
    )


class TestPlanValidation:
    def test_empty_plan(self):
        plan = FaultPlan()
        plan.validate()
        assert plan.is_empty
        assert plan.max_node == -1

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(node_crashes=[NodeCrash(window=1, node=0)])
        assert isinstance(plan.node_crashes, tuple)

    def test_recovery_before_crash_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(
                node_crashes=(NodeCrash(window=5, node=0, recover_window=5),)
            ).validate()

    def test_slowdown_factor_below_one_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(
                disk_slowdowns=(DiskSlowdown(window=0, node=0, factor=0.5),)
            ).validate()

    def test_unknown_transient_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(
                transient_faults=(TransientFault(kind="teleport", window=0),)
            ).validate()

    def test_bench_degradation_range(self):
        with pytest.raises(FaultError):
            FaultPlan(bench_faults=(BenchFault(index=0, degradation=1.5),)).validate()

    def test_node_range_checked_against_cluster(self):
        plan = FaultPlan(node_crashes=(NodeCrash(window=0, node=5),))
        plan.validate()  # fine without a cluster size
        with pytest.raises(FaultError):
            plan.validate(n_nodes=3)

    def test_fault_error_is_repro_error(self):
        assert issubclass(FaultError, ReproError)
        assert issubclass(TransientError, FaultError)


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(seed=42, n_windows=50, n_nodes=4)
        b = FaultPlan.generate(seed=42, n_windows=50, n_nodes=4)
        assert a == b

    def test_different_seed_different_plan(self):
        a = FaultPlan.generate(seed=1, n_windows=200, n_nodes=4)
        b = FaultPlan.generate(seed=2, n_windows=200, n_nodes=4)
        assert a != b

    def test_generated_plan_validates(self):
        plan = FaultPlan.generate(seed=3, n_windows=100, n_nodes=4)
        plan.validate(n_nodes=4)

    def test_at_most_one_node_down_at_a_time(self):
        plan = FaultPlan.generate(
            seed=11, n_windows=300, n_nodes=4, crash_probability=0.5
        )
        down = set()
        timeline = {}
        for crash in plan.node_crashes:
            timeline.setdefault(crash.window, []).append(("crash", crash))
            if crash.recover_window is not None:
                timeline.setdefault(crash.recover_window, []).append(("recover", crash))
        for w in sorted(timeline):
            for kind, crash in timeline[w]:
                if kind == "recover":
                    down.discard(crash.node)
            for kind, crash in timeline[w]:
                if kind == "crash":
                    down.add(crash.node)
            assert len(down) <= 1

    def test_single_node_never_crashes(self):
        plan = FaultPlan.generate(
            seed=5, n_windows=500, n_nodes=1, crash_probability=0.9
        )
        assert plan.node_crashes == ()

    def test_zero_probabilities_give_empty_schedule(self):
        plan = FaultPlan.generate(
            seed=5,
            n_windows=100,
            n_nodes=4,
            crash_probability=0.0,
            slowdown_probability=0.0,
            search_fault_probability=0.0,
            push_fault_probability=0.0,
        )
        assert plan.is_empty

    def test_bad_inputs_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.generate(seed=0, n_windows=0)
        with pytest.raises(FaultError):
            FaultPlan.generate(seed=0, n_windows=5, n_nodes=0)


class TestPlanSerialization:
    def test_round_trip(self):
        plan = FaultPlan.generate(seed=9, n_windows=100, n_nodes=4)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_bench_faults_round_trip(self):
        plan = FaultPlan(
            bench_faults=(
                BenchFault(index=3, degradation=0.4),
                BenchFault(index=7, degradation=0.2, transient=False),
            )
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.bench_faults[1].transient is False

    def test_malformed_json_raises_fault_error(self):
        with pytest.raises(FaultError):
            FaultPlan.from_json("{not json")

    def test_malformed_fields_raise_fault_error(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"node_crashes": [{"bogus_field": 1}]})


class TestInjector:
    def test_crash_and_recovery_applied(self, cassandra):
        plan = FaultPlan(
            node_crashes=(NodeCrash(window=1, node=2, recover_window=3),)
        )
        cluster = make_cluster(cassandra)
        injector = FaultInjector(plan)
        injector.begin_window(0, cluster=cluster)
        assert cluster.down_node_indices == []
        injector.begin_window(1, cluster=cluster)
        assert cluster.down_node_indices == [2]
        injector.begin_window(2, cluster=cluster)
        assert cluster.down_node_indices == [2]
        injector.begin_window(3, cluster=cluster)
        assert cluster.down_node_indices == []

    def test_slowdown_applied_and_cleared(self, cassandra):
        plan = FaultPlan(
            disk_slowdowns=(
                DiskSlowdown(window=0, node=1, factor=3.0, end_window=2),
            )
        )
        cluster = make_cluster(cassandra)
        healthy = cluster.sustainable_throughput(0.5)
        injector = FaultInjector(plan)
        injector.begin_window(0, cluster=cluster)
        assert cluster.sustainable_throughput(0.5) < healthy
        injector.begin_window(1, cluster=cluster)
        injector.begin_window(2, cluster=cluster)
        assert cluster.sustainable_throughput(0.5) == healthy

    def test_node_fault_without_cluster_raises(self):
        plan = FaultPlan(node_crashes=(NodeCrash(window=0, node=0),))
        with pytest.raises(FaultError):
            FaultInjector(plan).begin_window(0, cluster=None)

    def test_transient_budget_decrements(self):
        plan = FaultPlan(
            transient_faults=(TransientFault(kind="search", window=2, failures=2),)
        )
        injector = FaultInjector(plan)
        injector.check("search", 0)  # nothing scheduled: no-op
        with pytest.raises(TransientError):
            injector.check("search", 2)
        with pytest.raises(TransientError):
            injector.check("search", 2)
        injector.check("search", 2)  # budget exhausted: operation succeeds
        injector.check("push", 2)  # other kinds unaffected

    def test_reset_restores_budgets(self):
        plan = FaultPlan(
            transient_faults=(TransientFault(kind="push", window=0, failures=1),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(TransientError):
            injector.check("push", 0)
        injector.check("push", 0)
        injector.reset()
        with pytest.raises(TransientError):
            injector.check("push", 0)

    def test_events_published(self, cassandra):
        plan = FaultPlan(
            node_crashes=(NodeCrash(window=0, node=0, recover_window=1),),
            transient_faults=(TransientFault(kind="search", window=0),),
        )
        bus = EventBus()
        topics = []
        bus.subscribe(lambda e: topics.append(e.topic), topic="fault")
        cluster = make_cluster(cassandra)
        injector = FaultInjector(plan, events=bus)
        injector.begin_window(0, cluster=cluster)
        with pytest.raises(TransientError):
            injector.check("search", 0)
        injector.begin_window(1, cluster=cluster)
        assert "fault.injected" in topics
        assert "fault.recovered" in topics

    def test_unapplicable_node_fault_skipped_not_fatal(self, cassandra):
        """Crashing the last live node is refused by the cluster; the
        injector records the skip instead of killing the run."""
        plan = FaultPlan(node_crashes=(NodeCrash(window=0, node=0),))
        cluster = make_cluster(cassandra, n_nodes=2)
        cluster.fail_node(1)
        bus = EventBus()
        skipped = []
        bus.subscribe(lambda e: skipped.append(e), topic="fault.skipped")
        FaultInjector(plan, events=bus).begin_window(0, cluster=cluster)
        assert len(skipped) == 1
        assert cluster.down_node_indices == [1]
