"""Tenant manifests: parsing, defaults, validation, spec building."""

import json
import sys

import pytest

from repro.errors import PersistenceError
from repro.middleware import (
    GuardSpec,
    SloSpec,
    load_manifest,
    parse_manifest,
    specs_from_manifest,
)

HAS_TOMLLIB = sys.version_info >= (3, 11)

DOCUMENT = {
    "defaults": {"hours": 1, "seed": 9, "window_seconds": 60},
    "tenants": [
        {"id": "assembly"},
        {
            "id": "annotation",
            "mode": "forecast",
            "seed": 2,
            "nodes": 3,
            "replication_factor": 2,
            "restart_policy": "rolling",
            "canary_margin": 0.2,
            "fault_seed": 7,
        },
    ],
}

TOML_TEXT = """
[defaults]
hours = 1
seed = 9
window_seconds = 60

[[tenants]]
id = "assembly"

[[tenants]]
id = "annotation"
mode = "forecast"
seed = 2
nodes = 3
replication_factor = 2
restart_policy = "rolling"
canary_margin = 0.2
fault_seed = 7
"""


class TestParsing:
    def test_defaults_merge_under_tenant_overrides(self):
        manifest = parse_manifest(DOCUMENT)
        assert len(manifest) == 2
        assembly, annotation = manifest.tenants
        assert assembly["seed"] == 9          # from [defaults]
        assert assembly["mode"] == "oracle"   # built-in default
        assert annotation["seed"] == 2        # tenant override wins
        assert annotation["window_seconds"] == 60

    def test_json_file_roundtrip(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(DOCUMENT))
        manifest = load_manifest(path)
        assert [t["id"] for t in manifest.tenants] == ["assembly", "annotation"]
        assert manifest.source == str(path)

    @pytest.mark.skipif(not HAS_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_toml_file_matches_json(self, tmp_path):
        toml_path = tmp_path / "tenants.toml"
        toml_path.write_text(TOML_TEXT)
        assert load_manifest(toml_path).tenants == parse_manifest(DOCUMENT).tenants

    @pytest.mark.skipif(HAS_TOMLLIB, reason="covers Python < 3.11 only")
    def test_toml_without_tomllib_is_a_clear_error(self, tmp_path):
        path = tmp_path / "tenants.toml"
        path.write_text(TOML_TEXT)
        with pytest.raises(PersistenceError, match="JSON"):
            load_manifest(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_manifest(tmp_path / "nope.json")

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError, match="malformed"):
            load_manifest(path)


class TestValidation:
    def test_unknown_section_rejected(self):
        with pytest.raises(PersistenceError, match="unknown section"):
            parse_manifest({"tenants": [{"id": "a"}], "tennants": []})

    def test_unknown_default_key_rejected(self):
        with pytest.raises(PersistenceError, match="unknown default key"):
            parse_manifest({"defaults": {"sede": 1}, "tenants": [{"id": "a"}]})

    def test_unknown_tenant_key_rejected(self):
        with pytest.raises(PersistenceError, match="unknown key"):
            parse_manifest({"tenants": [{"id": "a", "node": 3}]})

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(PersistenceError, match="non-empty"):
            parse_manifest({"tenants": []})

    def test_missing_id_rejected(self):
        with pytest.raises(PersistenceError, match="'id'"):
            parse_manifest({"tenants": [{"seed": 1}]})

    def test_duplicate_id_rejected(self):
        with pytest.raises(PersistenceError, match="duplicate"):
            parse_manifest({"tenants": [{"id": "a"}, {"id": "a"}]})

    def test_id_not_settable_from_defaults(self):
        with pytest.raises(PersistenceError, match="unknown default key"):
            parse_manifest({"defaults": {"id": "a"}, "tenants": [{"id": "b"}]})


class TestGuardStanzas:
    def test_guard_section_parsed(self):
        manifest = parse_manifest(
            {
                "guard": {"cluster_capacity": 250_000, "shedding": False},
                "tenants": [{"id": "a"}],
            }
        )
        assert manifest.cluster_capacity == 250_000.0
        assert manifest.shedding is False

    def test_guard_section_defaults(self):
        manifest = parse_manifest({"tenants": [{"id": "a"}]})
        assert manifest.cluster_capacity is None
        assert manifest.shedding is True

    def test_unknown_guard_section_key_rejected(self):
        with pytest.raises(PersistenceError, match=r"unknown \[guard\] key"):
            parse_manifest(
                {"guard": {"capasity": 1}, "tenants": [{"id": "a"}]}
            )

    def test_guard_section_value_types_checked(self):
        with pytest.raises(PersistenceError, match="cluster_capacity"):
            parse_manifest(
                {"guard": {"cluster_capacity": "lots"}, "tenants": [{"id": "a"}]}
            )
        with pytest.raises(PersistenceError, match="shedding"):
            parse_manifest(
                {"guard": {"shedding": "yes"}, "tenants": [{"id": "a"}]}
            )

    def test_unknown_nested_slo_key_rejected(self):
        with pytest.raises(PersistenceError, match=r"\[slo\].*thruput"):
            parse_manifest(
                {"tenants": [{"id": "a", "slo": {"thruput_floor": 10}}]}
            )

    def test_unknown_nested_guard_key_rejected(self):
        with pytest.raises(PersistenceError, match=r"\[guard\].*fuses"):
            parse_manifest(
                {"tenants": [{"id": "a", "guard": {"fuses": 3}}]}
            )

    def test_unknown_nested_key_in_defaults_rejected(self):
        with pytest.raises(PersistenceError, match=r"\[defaults.slo\]"):
            parse_manifest(
                {
                    "defaults": {"slo": {"floor": 10}},
                    "tenants": [{"id": "a"}],
                }
            )

    def test_nested_stanza_must_be_a_table(self):
        with pytest.raises(PersistenceError, match="must be a table"):
            parse_manifest({"tenants": [{"id": "a", "slo": 40000}]})

    def test_nested_stanzas_merge_key_wise_over_defaults(self):
        manifest = parse_manifest(
            {
                "defaults": {
                    "slo": {"throughput_floor": 40_000, "window_span": 8}
                },
                "tenants": [
                    {"id": "a"},
                    {"id": "b", "slo": {"window_span": 4}},
                ],
            }
        )
        a, b = manifest.tenants
        assert a["slo"] == {"throughput_floor": 40_000, "window_span": 8}
        # b refines one key; the defaults' floor survives.
        assert b["slo"] == {"throughput_floor": 40_000, "window_span": 4}

    def test_specs_carry_guard_settings(self):
        manifest = parse_manifest(
            {
                "defaults": {"hours": 1},
                "tenants": [
                    {
                        "id": "guarded",
                        "priority": 3,
                        "slo": {"throughput_floor": 40_000},
                        "guard": {"max_restarts": 2},
                    },
                    {"id": "plain"},
                ],
            }
        )
        guarded, plain = specs_from_manifest(manifest)
        assert guarded.priority == 3
        assert guarded.slo == SloSpec(throughput_floor=40_000)
        assert guarded.guard == GuardSpec(max_restarts=2)
        assert plain.priority == 0
        assert plain.slo is None and plain.guard is None

    def test_bad_nested_value_names_the_tenant(self):
        manifest = parse_manifest(
            {
                "defaults": {"hours": 1},
                "tenants": [{"id": "bad", "slo": {"error_budget": 2.0}}],
            }
        )
        with pytest.raises(PersistenceError, match="bad"):
            specs_from_manifest(manifest)


class TestSpecBuilding:
    def test_specs_reflect_manifest(self):
        specs = specs_from_manifest(parse_manifest(DOCUMENT))
        assert [s.tenant_id for s in specs] == ["assembly", "annotation"]
        assembly, annotation = specs
        assert assembly.n_nodes == 1
        assert assembly.fault_plan is None
        # 1 hour of 60 s windows.
        assert len(assembly.rr_series) == 60
        assert annotation.n_nodes == 3
        assert annotation.restart_policy == "rolling"
        assert annotation.canary_margin == 0.2
        assert annotation.fault_plan is not None

    def test_hours_override_shortens_every_series(self):
        specs = specs_from_manifest(parse_manifest(DOCUMENT), hours=0.5)
        assert all(len(s.rr_series) == 30 for s in specs)

    def test_per_tenant_traces_differ_by_seed(self):
        specs = specs_from_manifest(parse_manifest(DOCUMENT))
        assert list(specs[0].rr_series) != list(specs[1].rr_series)

    def test_invalid_spec_names_the_tenant(self):
        document = {
            "tenants": [{"id": "bad", "fault_seed": 3, "nodes": 1, "hours": 1}]
        }
        # A 1-node tenant whose generated plan contains node-level
        # faults must fail with the tenant named.
        try:
            specs_from_manifest(parse_manifest(document))
        except PersistenceError as exc:
            assert "bad" in str(exc)

    def test_wrong_typed_value_names_the_tenant(self):
        document = {"tenants": [{"id": "typo", "nodes": "three", "hours": 1}]}
        with pytest.raises(PersistenceError, match="typo"):
            specs_from_manifest(parse_manifest(document))
