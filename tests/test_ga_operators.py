import numpy as np
import pytest

from repro.ga.operators import (
    gaussian_mutation,
    tournament_select,
    weighted_average_crossover,
)


class TestCrossover:
    def test_child_within_parent_hull(self, rng):
        a = np.array([0.0, 10.0, 5.0])
        b = np.array([10.0, 0.0, 5.0])
        for _ in range(50):
            child = weighted_average_crossover(a, b, rng)
            assert np.all(child >= np.minimum(a, b) - 1e-12)
            assert np.all(child <= np.maximum(a, b) + 1e-12)

    def test_identical_parents_identical_child(self, rng):
        a = np.array([3.0, 4.0])
        child = weighted_average_crossover(a, a.copy(), rng)
        assert np.allclose(child, a)

    def test_per_gene_weights(self, rng):
        """Each gene gets its own weight (not a single shared r)."""
        a = np.zeros(64)
        b = np.ones(64)
        child = weighted_average_crossover(a, b, rng)
        assert child.std() > 0.05


class TestMutation:
    def test_respects_bounds(self, rng):
        lower, upper = np.zeros(4), np.ones(4)
        genes = np.full(4, 0.5)
        for _ in range(100):
            m = gaussian_mutation(genes, lower, upper, rng, rate=1.0, scale=2.0)
            assert np.all(m >= lower) and np.all(m <= upper)

    def test_zero_rate_no_change(self, rng):
        genes = np.array([0.3, 0.7])
        m = gaussian_mutation(genes, np.zeros(2), np.ones(2), rng, rate=0.0)
        assert np.array_equal(m, genes)

    def test_does_not_mutate_input_in_place(self, rng):
        genes = np.array([0.5, 0.5])
        original = genes.copy()
        gaussian_mutation(genes, np.zeros(2), np.ones(2), rng, rate=1.0)
        assert np.array_equal(genes, original)

    def test_scale_controls_step(self, rng):
        genes = np.full(1000, 0.5)
        small = gaussian_mutation(genes, np.zeros(1000), np.ones(1000), rng, rate=1.0, scale=0.01)
        large = gaussian_mutation(genes, np.zeros(1000), np.ones(1000), rng, rate=1.0, scale=0.2)
        assert np.abs(small - 0.5).mean() < np.abs(large - 0.5).mean()


class TestTournament:
    def test_picks_best_when_k_covers_all(self, rng):
        fitness = [1.0, 5.0, 3.0]
        winners = {tournament_select(fitness, rng, k=3) for _ in range(100)}
        assert 1 in winners  # the best must win at least sometimes
        counts = [0, 0, 0]
        for _ in range(300):
            counts[tournament_select(fitness, rng, k=3)] += 1
        assert counts[1] > counts[0]

    def test_single_individual(self, rng):
        assert tournament_select([42.0], rng) == 0

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            tournament_select([], rng)
