import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.network import FeedForwardNetwork
from repro.ml.train import train_adam, train_bayesian_lm


def toy_problem(n=150, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 3))
    y = np.sin(2 * x[:, 0]) + 0.5 * x[:, 1] * x[:, 2]
    return x, y


class TestBayesianLM:
    def test_fits_nonlinear_function(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(1))
        result = train_bayesian_lm(net, x, y)
        assert result.train_mse < 0.01

    def test_respects_epoch_cap(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(1))
        result = train_bayesian_lm(net, x, y, max_epochs=5)
        assert result.epochs <= 5

    def test_effective_parameters_bounded(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(2))
        result = train_bayesian_lm(net, x, y)
        assert 0 < result.effective_parameters <= net.n_weights

    def test_hyperparameters_positive(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 8, 1], rng=np.random.default_rng(3))
        result = train_bayesian_lm(net, x, y)
        assert result.alpha > 0 and result.beta > 0

    def test_regularization_shrinks_on_noise(self):
        """Pure-noise targets should yield few effective parameters."""
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(100, 3))
        y = rng.standard_normal(100)
        net = FeedForwardNetwork([3, 10, 1], rng=rng)
        result = train_bayesian_lm(net, x, y)
        assert result.effective_parameters < net.n_weights * 0.8

    def test_linear_function_learned_exactly(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, size=(80, 2))
        y = 3 * x[:, 0] - 2 * x[:, 1]
        net = FeedForwardNetwork([2, 6, 1], rng=rng)
        train_bayesian_lm(net, x, y)
        x_test = rng.uniform(-0.8, 0.8, size=(20, 2))
        y_test = 3 * x_test[:, 0] - 2 * x_test[:, 1]
        assert np.abs(net.predict(x_test) - y_test).max() < 0.1

    def test_bad_shapes_rejected(self):
        net = FeedForwardNetwork([3, 4, 1], rng=np.random.default_rng(0))
        with pytest.raises(TrainingError):
            train_bayesian_lm(net, np.ones(5), np.ones(5))
        with pytest.raises(TrainingError):
            train_bayesian_lm(net, np.ones((5, 3)), np.ones(4))
        with pytest.raises(TrainingError):
            train_bayesian_lm(net, np.empty((0, 3)), np.empty(0))

    def test_deterministic_given_same_init(self):
        x, y = toy_problem()
        net1 = FeedForwardNetwork([3, 6, 1], rng=np.random.default_rng(7))
        net2 = FeedForwardNetwork([3, 6, 1], rng=np.random.default_rng(7))
        train_bayesian_lm(net1, x, y, max_epochs=30)
        train_bayesian_lm(net2, x, y, max_epochs=30)
        assert np.allclose(net1.get_weights(), net2.get_weights())


class TestAdam:
    def test_fits_reasonably(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(1))
        result = train_adam(net, x, y, epochs=300)
        assert result.train_mse < 0.05

    def test_minibatch_mode(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(1))
        result = train_adam(net, x, y, epochs=100, batch_size=32)
        assert result.train_mse < 0.2
