import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ml.network import FeedForwardNetwork
from repro.ml.train import (
    EQUIVALENCE_RTOL,
    _chol_inverse_trace,
    _chol_solve,
    train_adam,
    train_bayesian_lm,
)


def toy_problem(n=150, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 3))
    y = np.sin(2 * x[:, 0]) + 0.5 * x[:, 1] * x[:, 2]
    return x, y


class TestBayesianLM:
    def test_fits_nonlinear_function(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(1))
        result = train_bayesian_lm(net, x, y)
        assert result.train_mse < 0.01

    def test_respects_epoch_cap(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(1))
        result = train_bayesian_lm(net, x, y, max_epochs=5)
        assert result.epochs <= 5

    def test_effective_parameters_bounded(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(2))
        result = train_bayesian_lm(net, x, y)
        assert 0 < result.effective_parameters <= net.n_weights

    def test_hyperparameters_positive(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 8, 1], rng=np.random.default_rng(3))
        result = train_bayesian_lm(net, x, y)
        assert result.alpha > 0 and result.beta > 0

    def test_regularization_shrinks_on_noise(self):
        """Pure-noise targets should yield few effective parameters."""
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(100, 3))
        y = rng.standard_normal(100)
        net = FeedForwardNetwork([3, 10, 1], rng=rng)
        result = train_bayesian_lm(net, x, y)
        assert result.effective_parameters < net.n_weights * 0.8

    def test_linear_function_learned_exactly(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(-1, 1, size=(80, 2))
        y = 3 * x[:, 0] - 2 * x[:, 1]
        net = FeedForwardNetwork([2, 6, 1], rng=rng)
        train_bayesian_lm(net, x, y)
        x_test = rng.uniform(-0.8, 0.8, size=(20, 2))
        y_test = 3 * x_test[:, 0] - 2 * x_test[:, 1]
        assert np.abs(net.predict(x_test) - y_test).max() < 0.1

    def test_bad_shapes_rejected(self):
        net = FeedForwardNetwork([3, 4, 1], rng=np.random.default_rng(0))
        with pytest.raises(TrainingError):
            train_bayesian_lm(net, np.ones(5), np.ones(5))
        with pytest.raises(TrainingError):
            train_bayesian_lm(net, np.ones((5, 3)), np.ones(4))
        with pytest.raises(TrainingError):
            train_bayesian_lm(net, np.empty((0, 3)), np.empty(0))

    def test_deterministic_given_same_init(self):
        x, y = toy_problem()
        net1 = FeedForwardNetwork([3, 6, 1], rng=np.random.default_rng(7))
        net2 = FeedForwardNetwork([3, 6, 1], rng=np.random.default_rng(7))
        train_bayesian_lm(net1, x, y, max_epochs=30)
        train_bayesian_lm(net2, x, y, max_epochs=30)
        assert np.allclose(net1.get_weights(), net2.get_weights())


class TestAdam:
    def test_fits_reasonably(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(1))
        result = train_adam(net, x, y, epochs=300)
        assert result.train_mse < 0.05

    def test_minibatch_mode(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 10, 1], rng=np.random.default_rng(1))
        result = train_adam(net, x, y, epochs=100, batch_size=32)
        assert result.train_mse < 0.2


def _reference_lm(net, x, y, max_epochs, tolerance=1e-7, mu0=5e-3, mu_max=1e10):
    """The seed implementation: LU step solve + explicit inverse trace,
    separate predict()/jacobian() forwards.  The Cholesky path must stay
    numerically equivalent to this (see ``EQUIVALENCE_RTOL``)."""
    n_samples = x.shape[0]
    n_weights = net.n_weights
    identity = np.eye(n_weights)
    alpha, beta = 1e-2, 1.0
    mu = mu0
    w = net.get_weights()

    def energies(weights):
        net.set_weights(weights)
        residuals = net.predict(x) - y
        return residuals, float(residuals @ residuals), float(weights @ weights)

    residuals, e_d, e_w = energies(w)
    objective = beta * e_d + alpha * e_w
    for _ in range(max_epochs):
        jac = net.jacobian(x)
        jtj = jac.T @ jac
        grad = beta * (jac.T @ residuals) + alpha * w
        improved = False
        while mu <= mu_max:
            try:
                step = np.linalg.solve(beta * jtj + (alpha + mu) * identity, grad)
            except np.linalg.LinAlgError:
                mu *= 10.0
                continue
            w_new = w - step
            residuals_new, e_d_new, e_w_new = energies(w_new)
            objective_new = beta * e_d_new + alpha * e_w_new
            if objective_new < objective:
                w, residuals, e_d, e_w = w_new, residuals_new, e_d_new, e_w_new
                objective = objective_new
                mu = max(mu / 10.0, 1e-12)
                improved = True
                break
            mu *= 10.0
        if not improved:
            net.set_weights(w)
            break
        h_inv = np.linalg.inv(beta * jtj + alpha * identity)
        gamma = float(np.clip(n_weights - alpha * np.trace(h_inv), 0.1, n_weights))
        alpha = gamma / max(2.0 * e_w, 1e-12)
        beta = max(n_samples - gamma, 1e-3) / max(2.0 * e_d, 1e-12)
        objective = beta * e_d + alpha * e_w
    net.set_weights(w)
    return w, alpha, beta


class TestCholeskyFactorizationPath:
    """The single-Cholesky step/trace path vs the LU + inv reference."""

    def spd_problem(self, seed=0):
        x, y = toy_problem(seed=seed)
        net = FeedForwardNetwork([3, 6, 1], rng=np.random.default_rng(seed + 1))
        jac = net.jacobian(x)
        hessian = 1.7 * (jac.T @ jac) + 0.3 * np.eye(net.n_weights)
        return hessian, net.n_weights

    def test_step_solve_matches_lu(self):
        hessian, n = self.spd_problem()
        grad = np.random.default_rng(9).standard_normal(n)
        chol = np.linalg.cholesky(hessian)
        assert np.allclose(
            _chol_solve(chol, grad),
            np.linalg.solve(hessian, grad),
            rtol=EQUIVALENCE_RTOL,
        )

    def test_inverse_trace_matches_explicit_inverse(self):
        hessian, n = self.spd_problem(seed=3)
        chol = np.linalg.cholesky(hessian)
        assert np.isclose(
            _chol_inverse_trace(chol, np.eye(n)),
            float(np.trace(np.linalg.inv(hessian))),
            rtol=EQUIVALENCE_RTOL,
        )

    def test_trainer_tracks_lu_reference(self):
        x, y = toy_problem()
        net_a = FeedForwardNetwork([3, 6, 1], rng=np.random.default_rng(11))
        net_b = FeedForwardNetwork([3, 6, 1], rng=np.random.default_rng(11))
        train_bayesian_lm(net_a, x, y, max_epochs=5)
        w_ref, alpha_ref, beta_ref = _reference_lm(net_b, x, y, max_epochs=5)
        assert np.allclose(net_a.get_weights(), w_ref, rtol=EQUIVALENCE_RTOL)

    def test_zero_epochs_still_reports_finite_gamma(self):
        x, y = toy_problem()
        net = FeedForwardNetwork([3, 6, 1], rng=np.random.default_rng(4))
        result = train_bayesian_lm(net, x, y, max_epochs=0)
        assert result.epochs == 0
        assert np.isfinite(result.effective_parameters)


class CountingNetwork(FeedForwardNetwork):
    """Counts forward passes to pin the no-redundant-Jacobian contract."""

    combined_calls = 0
    jacobian_calls = 0

    def forward_with_jacobian(self, x):
        self.combined_calls += 1
        return super().forward_with_jacobian(x)

    def jacobian(self, x):
        self.jacobian_calls += 1
        return super().jacobian(x)


class TestForwardReuse:
    def test_lm_runs_one_combined_pass_per_epoch(self):
        x, y = toy_problem()
        net = CountingNetwork([3, 6, 1], rng=np.random.default_rng(1))
        result = train_bayesian_lm(net, x, y, max_epochs=10)
        # The end-of-training report recomputes the Jacobian at most
        # once (never, when the last epoch left the weights unchanged).
        assert net.jacobian_calls <= 1
        assert net.combined_calls == result.epochs + net.jacobian_calls

    def test_adam_never_double_forwards_a_batch(self):
        x, y = toy_problem()
        net = CountingNetwork([3, 6, 1], rng=np.random.default_rng(1))
        train_adam(net, x, y, epochs=3, batch_size=50)
        assert net.jacobian_calls == 0
        assert net.combined_calls == 3 * 3  # 150 samples / 50 per batch
