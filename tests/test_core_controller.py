import pytest

from repro.core.controller import OnlineController
from repro.datastore import CassandraLike
from repro.errors import SearchError
from repro.workload.spec import WorkloadSpec


@pytest.fixture(scope="module")
def cassandra():
    return CassandraLike()


@pytest.fixture(scope="module")
def workload():
    return WorkloadSpec(read_ratio=0.5, n_keys=2_000_000)


class FakeRafiki:
    """Recommends leveled+big-cache for reads, defaults for writes."""

    def __init__(self, datastore):
        self.datastore = datastore
        self.calls = []

    def recommend(self, read_ratio, use_cache=True):
        self.calls.append(read_ratio)
        from repro.core.search import OptimizationResult

        if read_ratio >= 0.5:
            config = self.datastore.space.configuration(
                compaction_method="LeveledCompactionStrategy",
                file_cache_size_in_mb=2048,
            )
        else:
            config = self.datastore.default_configuration()
        return OptimizationResult(
            configuration=config,
            predicted_throughput=0.0,
            evaluations=1,
            equivalent_wall_seconds=0.0,
            strategy="fake",
        )


class TestOnlineController:
    def test_empty_series_rejected(self, cassandra, workload):
        ctrl = OnlineController(cassandra, None, workload, window_seconds=60)
        with pytest.raises(SearchError):
            ctrl.run([])

    def test_baseline_never_reconfigures(self, cassandra, workload):
        ctrl = OnlineController(cassandra, None, workload, window_seconds=60)
        run = ctrl.run([0.1, 0.9, 0.5], load=False)
        assert run.reconfiguration_count == 0
        assert len(run.events) == 3

    def test_reconfigures_on_regime_change(self, cassandra, workload):
        rafiki = FakeRafiki(cassandra)
        ctrl = OnlineController(
            cassandra, rafiki, workload, window_seconds=60, rr_change_threshold=0.1
        )
        run = ctrl.run([0.1, 0.1, 0.9, 0.9], load=False)
        # First window always consults; then only the 0.1 -> 0.9 jump.
        assert run.reconfiguration_count >= 1
        assert any(e.reconfigured for e in run.events[2:])

    def test_small_wobble_ignored(self, cassandra, workload):
        rafiki = FakeRafiki(cassandra)
        ctrl = OnlineController(
            cassandra, rafiki, workload, window_seconds=60, rr_change_threshold=0.2
        )
        ctrl.run([0.50, 0.55, 0.52, 0.58], load=False)
        assert len(rafiki.calls) == 1  # only the first window

    def test_events_record_throughput(self, cassandra, workload):
        ctrl = OnlineController(cassandra, None, workload, window_seconds=60)
        run = ctrl.run([0.5, 0.5], load=False)
        assert all(e.mean_throughput > 0 for e in run.events)
        assert run.mean_throughput > 0

    def test_rr_clipped(self, cassandra, workload):
        ctrl = OnlineController(cassandra, None, workload, window_seconds=60)
        run = ctrl.run([1.4, -0.2], load=False)
        assert run.events[0].read_ratio == 1.0
        assert run.events[1].read_ratio == 0.0

    def test_reconfiguration_penalty_reduces_window(self, cassandra, workload):
        rafiki = FakeRafiki(cassandra)
        slow = OnlineController(
            cassandra, rafiki, workload, window_seconds=60,
            reconfiguration_penalty_s=30.0, seed=7,
        )
        run_slow = slow.run([0.9], load=False)
        fast = OnlineController(
            cassandra, FakeRafiki(cassandra), workload, window_seconds=60,
            reconfiguration_penalty_s=0.0, seed=7,
        )
        run_fast = fast.run([0.9], load=False)
        assert run_slow.events[0].mean_throughput < run_fast.events[0].mean_throughput
