#!/usr/bin/env python3
"""Crash-safe persistence and recovery, end to end.

The offline phase is the expensive part of Rafiki — hundreds of
benchmark runs plus an ensemble fit — so this tour kills things on
purpose and shows that nothing of value is lost:

1. run a journaled collection campaign, "kill" it after four samples
   (truncate a copy of its write-ahead log — exactly the durable state
   a SIGKILL leaves), resume, and diff: bit-identical,
2. checkpoint an ensemble fit per member, lose one checkpoint, refit:
   bitwise-identical weights with 3/4 members skipped,
3. crash the LSM engine mid-workload at scheduled CrashPoints, recover
   through SSTable scrub + commitlog replay, and check the survivor
   serves exactly what an uninterrupted engine does,
4. flip one byte in a saved dataset and watch the checksummed loader
   refuse it loudly instead of returning silently wrong samples.

Everything is seeded, so every run of this script prints the same
numbers.

    python examples/crash_recovery_tour.py
"""

import pathlib
import tempfile

import numpy as np

from repro import (
    CASSANDRA_KEY_PARAMETERS,
    CassandraLike,
    CrashPoint,
    EventBus,
    FaultPlan,
    PersistenceError,
    mgrast_workload,
)
from repro.bench.collection import DataCollectionCampaign
from repro.bench.dataset import load_dataset, save_dataset
from repro.bench.ycsb import YCSBBenchmark
from repro.ml.ensemble import EnsembleConfig, NetworkEnsemble
from repro.recovery.checkpoint import member_checkpoint_path
from repro.recovery.crashsim import generate_ops, run_ops, states_equivalent


def make_campaign(journal, events=None):
    cassandra = CassandraLike()
    return DataCollectionCampaign(
        cassandra,
        mgrast_workload(0.5),
        key_parameters=list(CASSANDRA_KEY_PARAMETERS),
        n_workloads=3,
        n_configurations=3,
        n_faulty=1,
        benchmark=YCSBBenchmark(cassandra, run_seconds=30),
        seed=11,
        events=events,
        journal=journal,
    )


def main():
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="crash-tour-"))
    events = EventBus()
    events.subscribe(lambda e: print(f"   {e}"), topic="recovery")

    print("== 1. Kill a journaled campaign, resume, diff ==")
    journal = workdir / "campaign.wal"
    reference = make_campaign(journal=journal).run()
    lines = journal.read_text().splitlines(keepends=True)
    print(f"   uninterrupted: {len(lines) - 1} samples journaled")

    partial = workdir / "killed.wal"
    partial.write_text("".join(lines[:5]))  # header + 4 durable samples
    print("   'killed' after 4 samples; resuming from the surviving WAL")
    resumed = make_campaign(journal=partial, events=events).run()
    assert resumed.to_json() == reference.to_json()
    print("   resumed dataset is bit-identical to the uninterrupted one")

    print("\n== 2. Checkpointed ensemble training ==")
    rng = np.random.default_rng(5)
    x = rng.normal(size=(24, 3))
    y = x @ np.array([1.0, -2.0, 0.5]) + rng.normal(0, 0.1, size=24)
    config = EnsembleConfig(hidden_layers=(4,), n_networks=4, max_epochs=30)
    ckpt = workdir / "checkpoints"
    ref_fit = NetworkEnsemble(config).fit(x, y, seed=7, checkpoint_dir=ckpt)
    member_checkpoint_path(ckpt, 2).unlink()  # as if killed mid-member-2
    print("   lost member 2's checkpoint; refitting")
    refit = NetworkEnsemble(config).fit(
        x, y, seed=7, checkpoint_dir=ckpt, events=events
    )
    for a, b in zip(ref_fit.networks, refit.networks):
        assert np.array_equal(a.get_weights(), b.get_weights())
    print("   only member 2 retrained; final weights bitwise-identical")

    print("\n== 3. LSM engine crash + recovery at scheduled CrashPoints ==")
    cassandra = CassandraLike()
    config_ = cassandra.space.default_configuration()
    ops = generate_ops(np.random.default_rng(3), n_ops=120, value_bytes=256)
    plan = FaultPlan(crash_points=(CrashPoint(op=40), CrashPoint(op=90)))

    healthy = cassandra.new_engine_instance(config_)
    run_ops(healthy, ops)
    crashed = cassandra.new_engine_instance(config_)
    crashed.events = events
    report = run_ops(crashed, ops, crash_plan=plan)
    for recovery in report.recoveries:
        print(
            f"   recovered: {recovery.replayed_records} records replayed "
            f"({recovery.replayed_bytes:,} B), "
            f"{recovery.scrubbed_tables} SSTables scrubbed, "
            f"{recovery.recovery_seconds:.3f}s charged"
        )
    keys = sorted({op[1] for op in ops})
    assert states_equivalent(crashed, healthy, keys)
    print(f"   after {report.crashes} kills: all {len(keys)} keys identical "
          "to the never-crashed engine")

    print("\n== 4. Corruption is refused, not returned ==")
    path = workdir / "dataset.json"
    save_dataset(reference, path)
    text = path.read_text()
    path.write_text(text.replace("0", "1", 1))  # one flipped digit
    try:
        load_dataset(path, cassandra.space, events=events)
    except PersistenceError as exc:
        print(f"   PersistenceError: {exc}")
    else:
        raise AssertionError("corrupt artifact was accepted")
    print("\n   every artifact is atomic (temp + fsync + rename) and "
          "CRC32-checked;\n   see 'Crash consistency & recovery' in DESIGN.md")


if __name__ == "__main__":
    main()
