#!/usr/bin/env python3
"""The multi-tenant middleware service layer, end to end.

Rafiki's pitch is *middleware*: one tuning service between many dynamic
workloads and a datastore fleet.  This tour runs that service:

1. train a shared surrogate offline on a tiny budget (as in the
   quickstart),
2. host four tenants — different seeded MG-RAST days, one on a 3-node
   ring with rolling restarts, one with faults and a canary guard — on
   one MiddlewareScheduler, every tenant's events namespaced on a
   shared bus,
3. show the rolling restart charging real transient capacity loss
   (instead of the legacy flat penalty constant),
4. check the single-tenant guarantee: the legacy OnlineController API
   and a one-tenant scheduler produce bit-identical runs,
5. re-run the whole campaign and verify the event sequence is
   identical — the scheduler's determinism contract.

    python examples/middleware_tour.py
"""

from repro import (
    CASSANDRA_KEY_PARAMETERS,
    CassandraLike,
    EventBus,
    FaultPlan,
    MGRastTraceGenerator,
    MiddlewareScheduler,
    OnlineController,
    RafikiPipeline,
    TenantSpec,
    mgrast_workload,
)
from repro.bench import YCSBBenchmark
from repro.ml.ensemble import EnsembleConfig


def train_shared_surrogate(cassandra):
    print("== 1. Train the shared surrogate (tiny offline budget) ==")
    pipeline = RafikiPipeline(
        cassandra,
        mgrast_workload(0.5),
        benchmark=YCSBBenchmark(cassandra, run_seconds=30),
        ensemble_config=EnsembleConfig(n_networks=4, max_epochs=60),
        n_workloads=5,
        n_configurations=8,
        n_faulty=2,
        seed=11,
    )
    rafiki, _ = pipeline.run(key_parameters=CASSANDRA_KEY_PARAMETERS)
    print("   done\n")
    return rafiki


def tenant_fleet():
    """Four tenants, four different days, four different shapes."""

    def day(seed, hours=2):
        return MGRastTraceGenerator(seed=seed, window_seconds=60).read_ratio_series(
            hours * 3600
        )

    return [
        TenantSpec(
            tenant_id="assembly",
            rr_series=day(1),
            base_workload=mgrast_workload(0.5),
            seed=1,
            window_seconds=60,
            load=False,
        ),
        TenantSpec(
            tenant_id="annotation",
            rr_series=day(2),
            base_workload=mgrast_workload(0.5),
            seed=2,
            window_seconds=60,
            load=False,
        ),
        TenantSpec(
            tenant_id="archive",
            rr_series=day(3),
            base_workload=mgrast_workload(0.5),
            seed=3,
            window_seconds=60,
            n_nodes=3,
            replication_factor=2,
            restart_policy="rolling",     # reconfigs cost modeled downtime
            restart_seconds_per_node=10.0,
            load=False,
        ),
        TenantSpec(
            tenant_id="burst",
            rr_series=day(4),
            base_workload=mgrast_workload(0.5),
            seed=4,
            window_seconds=60,
            fault_plan=FaultPlan.generate(
                seed=21,
                n_windows=len(day(4)),
                n_nodes=1,
                slowdown_probability=0.0,
                search_fault_probability=0.1,
                push_fault_probability=0.1,
            ),
            canary_margin=0.2,
            canary_std_factor=0.5,
            load=False,
        ),
    ]


def run_campaign(cassandra, rafiki, quiet=False):
    events = EventBus()
    log = []
    events.subscribe(lambda e: log.append((e.topic, e.message)))
    scheduler = MiddlewareScheduler(cassandra, rafiki, events=events)
    for spec in tenant_fleet():
        scheduler.add_tenant(spec)
    if not quiet:
        events.subscribe(
            lambda e: print(f"   {e}"), topic="tenant.archive.actuate"
        )
        events.subscribe(
            lambda e: print(f"   {e}"), topic="tenant.burst.controller"
        )
    results = scheduler.run()
    return results, log


def main():
    cassandra = CassandraLike()
    rafiki = train_shared_surrogate(cassandra)

    print("== 2. Serve four tenants on one scheduler ==")
    results, log = run_campaign(cassandra, rafiki)

    print("\n== 3. Per-tenant outcomes ==")
    for tenant_id, run in results.items():
        print(
            f"   {tenant_id:<12} {len(run.events):>3} windows  "
            f"{run.mean_throughput:>10,.0f} ops/s  "
            f"{run.reconfiguration_count} reconfigs  "
            f"{run.rollback_count} rollbacks  "
            f"{run.degraded_count} degraded"
        )
    restart_events = [
        topic for topic, _ in log if topic == "tenant.archive.actuate.rolling_restart"
    ]
    print(f"   archive paid {len(restart_events)} rolling-restart transient(s)")
    assert restart_events, "expected the rolling tenant to pay for its restarts"

    print("\n== 4. Single-tenant runs match the legacy controller exactly ==")
    series = MGRastTraceGenerator(seed=5, window_seconds=60).read_ratio_series(3600)
    legacy = OnlineController(
        cassandra, rafiki, mgrast_workload(0.5), window_seconds=60, seed=9
    ).run(series, load=False)
    solo = MiddlewareScheduler(cassandra, rafiki)
    solo.add_tenant(
        TenantSpec(
            tenant_id="solo",
            rr_series=series,
            base_workload=mgrast_workload(0.5),
            seed=9,
            window_seconds=60,
            load=False,
        )
    )
    tenant = solo.run()["solo"]
    assert [e.mean_throughput for e in legacy.events] == [
        e.mean_throughput for e in tenant.events
    ], "single-tenant middleware must be bit-identical to the legacy API"
    print("   bit-identical: every window throughput matches")

    print("\n== 5. Determinism: the same campaign replays identically ==")
    _, log2 = run_campaign(cassandra, rafiki, quiet=True)
    assert log == log2, "same seeds + same tenants must replay identically"
    print(f"   {len(log)} events, identical sequence on re-run")


if __name__ == "__main__":
    main()
