#!/usr/bin/env python3
"""Dynamic metagenomics workloads: trace characterization + online tuning.

Reproduces the paper's motivating scenario end to end:

1. synthesize an MG-RAST-like query trace (Figure 3's regime switches),
2. characterize it — read ratio per 15-minute window, exponential KRD
   fit (§3.3),
3. replay the windows against one long-lived simulated Cassandra,
   static default vs Rafiki-driven reconfiguration.

    python examples/mgrast_dynamic_tuning.py
"""

import numpy as np

from repro import (
    CASSANDRA_KEY_PARAMETERS,
    CassandraLike,
    MGRastTraceGenerator,
    RafikiPipeline,
    characterize_trace,
    mgrast_workload,
)
from repro.core.controller import OnlineController


def main():
    print("== 1. Synthesize a day of MG-RAST-like queries ==")
    generator = MGRastTraceGenerator(seed=42, queries_per_window=1500)
    trace = generator.generate(duration_seconds=24 * 3600)
    print(f"   {len(trace):,} queries over {trace.duration / 3600:.0f} hours")

    print("\n== 2. Characterize the workload (paper section 3.3) ==")
    ch = characterize_trace(trace)
    ratios = np.array(ch.read_ratios)
    print(f"   windows: {ch.n_windows} x {ch.window_seconds / 60:.0f} min")
    print(f"   overall read ratio: {ch.overall_read_ratio:.2f}")
    print(f"   fitted KRD scale: {ch.krd_mean_ops:,.0f} ops ({ch.krd_samples} reuses)")
    print(f"   read-heavy windows (RR>0.7): {(ratios > 0.7).mean():.0%}")
    print(f"   write-heavy windows (RR<0.3): {(ratios < 0.3).mean():.0%}")
    print(f"   largest window-to-window jump: {np.abs(np.diff(ratios)).max():.2f}")

    print("\n== 3. Train Rafiki offline ==")
    cassandra = CassandraLike()
    base_workload = mgrast_workload(0.5)
    pipeline = RafikiPipeline(cassandra, base_workload, seed=11)
    rafiki, _ = pipeline.run(key_parameters=CASSANDRA_KEY_PARAMETERS)
    print("   done")

    print("\n== 4. Replay the day: static default vs Rafiki ==")
    static = OnlineController(cassandra, None, base_workload, seed=5).run(ratios)
    adaptive = OnlineController(cassandra, rafiki, base_workload, seed=5).run(ratios)

    print(f"   static default : {static.mean_throughput:>9,.0f} ops/s")
    print(
        f"   rafiki online  : {adaptive.mean_throughput:>9,.0f} ops/s "
        f"({(adaptive.mean_throughput / static.mean_throughput - 1) * 100:+.1f}%)"
    )
    print(f"   reconfigurations: {adaptive.reconfiguration_count}")

    print("\n   window  RR    static      rafiki     reconfig")
    for s_ev, a_ev in list(zip(static.events, adaptive.events))[:12]:
        marker = "  <- switch" if a_ev.reconfigured else ""
        print(
            f"   {a_ev.window_index:>5}  {a_ev.read_ratio:.2f} "
            f"{s_ev.mean_throughput:>9,.0f} {a_ev.mean_throughput:>10,.0f}{marker}"
        )


if __name__ == "__main__":
    main()
