#!/usr/bin/env python3
"""ScyllaDB vs Cassandra: tuning against an internal auto-tuner.

Reproduces the paper's §4.10 findings:

* ScyllaDB's throughput oscillates even in a stationary system
  (Figure 10), because its internal tuner keeps re-balancing;
* user values for several parameters are silently ignored, so Rafiki
  tunes the five parameters that still matter;
* the resulting gains are real but much smaller than Cassandra's —
  the auto-tuner already does part of Rafiki's job.

    python examples/scylla_autotuner_comparison.py
"""

import numpy as np

from repro import (
    CASSANDRA_KEY_PARAMETERS,
    CassandraLike,
    RafikiPipeline,
    SCYLLA_KEY_PARAMETERS,
    ScyllaLike,
    YCSBBenchmark,
    mgrast_workload,
)


def stability_report(store, label):
    bench = YCSBBenchmark(store, run_seconds=600)
    result = bench.run(store.default_configuration(), mgrast_workload(0.7), seed=3)
    values = np.array([s.ops_per_second for s in result.series][10:])
    cov = values.std() / values.mean()
    swing = (values.max() - values.min()) / values.mean()
    print(
        f"   {label:<10} mean {values.mean():>9,.0f} ops/s   "
        f"cov {cov:.3f}   peak swing {swing:.0%}"
    )


def tune_and_report(store, key_parameters, read_ratio, seed):
    pipeline = RafikiPipeline(store, mgrast_workload(read_ratio), seed=seed)
    rafiki, _ = pipeline.run(key_parameters=key_parameters)
    result = rafiki.recommend(read_ratio)

    bench = YCSBBenchmark(store)
    wl = mgrast_workload(read_ratio)
    # Average several runs: ScyllaDB's tuner-induced variance makes a
    # single window unreliable.
    def avg(config):
        return np.mean(
            [bench.run(config, wl, seed=100 + i).mean_throughput for i in range(3)]
        )

    default_tp = avg(store.default_configuration())
    tuned_tp = avg(result.configuration)
    gain = tuned_tp / default_tp - 1.0
    print(
        f"   {store.name:<10} RR={read_ratio:.0%}: default {default_tp:>9,.0f} "
        f"-> rafiki {tuned_tp:>9,.0f}  ({gain:+.1%})"
    )
    return gain


def main():
    cassandra = CassandraLike()
    scylla = ScyllaLike()

    print("== Throughput stability at RR=70% (Figure 10) ==")
    stability_report(cassandra, "cassandra")
    stability_report(scylla, "scylladb")

    print("\n== Which parameters does ScyllaDB actually honour? ==")
    ignored = sorted(scylla.autotuned_parameters)
    print(f"   ignored by the auto-tuner: {', '.join(ignored)}")
    print(f"   Rafiki tunes instead    : {', '.join(SCYLLA_KEY_PARAMETERS)}")

    print("\n== Rafiki gains: Cassandra vs ScyllaDB (Table 4 shape) ==")
    cass_gain = tune_and_report(cassandra, CASSANDRA_KEY_PARAMETERS, 0.9, seed=11)
    scylla_gain_70 = tune_and_report(scylla, SCYLLA_KEY_PARAMETERS, 0.7, seed=12)
    scylla_gain_100 = tune_and_report(scylla, SCYLLA_KEY_PARAMETERS, 1.0, seed=12)

    print(
        "\n   The auto-tuner narrows the opportunity: "
        f"Cassandra {cass_gain:+.0%} vs ScyllaDB {scylla_gain_70:+.0%} / "
        f"{scylla_gain_100:+.0%} (paper: ~41% vs 12.3% / 9%)."
    )


if __name__ == "__main__":
    main()
