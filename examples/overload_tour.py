#!/usr/bin/env python3
"""Overload protection in the multi-tenant serve layer, end to end.

A shared cluster has finite capacity; without admission control, one
hostile tenant's demand silently degrades *every* tenant.  This tour
runs the guard layer:

1. host three SLO-carrying "victim" tenants plus one oversized hostile
   tenant on one MiddlewareScheduler, and measure the unguarded
   baseline: the ledger models the overload, every window scales down,
   every tenant misses its SLO,
2. turn shedding on: the deterministic priority shedder defers the
   hostile tenant's windows (``guard.shed`` events) while the victims
   keep serving at full throughput,
3. watch the hostile tenant's own guards react — its SLO error budget
   burns out (``guard.slo.budget_exhausted``), which trips its push
   breaker open (``guard.breaker.open``),
4. re-run the guarded fleet and verify the shed/breaker/SLO event
   sequence is bit-identical — the guard determinism contract.

Uses a deterministic table-fill recommender so the tour runs in
seconds; swap in a trained surrogate (see middleware_tour.py) for the
full pipeline.

    python examples/overload_tour.py
"""

from repro import (
    CassandraLike,
    EventBus,
    GuardSpec,
    MiddlewareScheduler,
    SloSpec,
    TenantSpec,
)
from repro.core.search import OptimizationResult
from repro.workload.spec import WorkloadSpec

WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)
N_WINDOWS = 12


class TableRafiki:
    """Deterministic stand-in recommender (one config per regime)."""

    def __init__(self, datastore):
        self.datastore = datastore
        self._cache = {}

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key not in self._cache:
            self._cache[key] = OptimizationResult(
                configuration=self.datastore.default_configuration(),
                predicted_throughput=0.0,
                evaluations=1,
                equivalent_wall_seconds=0.0,
                strategy="table",
            )
        return self._cache[key]


def build_fleet(victim_floor):
    slo = SloSpec(throughput_floor=victim_floor, window_span=6, error_budget=0.2)
    victims = [
        TenantSpec(
            tenant_id=tenant_id,
            rr_series=[rr] * N_WINDOWS,
            base_workload=WORKLOAD,
            seed=i + 1,
            window_seconds=30,
            load=False,
            priority=0,          # most important: shed last
            slo=slo,
        )
        for i, (tenant_id, rr) in enumerate(
            zip(("assembly", "annotation", "binning"), (0.3, 0.6, 0.45))
        )
    ]
    hostile = TenantSpec(
        tenant_id="hostile",
        rr_series=[0.5] * N_WINDOWS,
        base_workload=WORKLOAD,
        seed=9,
        window_seconds=30,
        load=False,
        n_nodes=4,               # 4x the demand of any victim
        priority=5,              # least important: shed first
        slo=slo,
        guard=GuardSpec(breaker_failures=3, breaker_cooldown=3),
    )
    return victims + [hostile]


def run_fleet(capacity, victim_floor, shedding):
    events = EventBus()
    guard_log = []
    events.subscribe(
        lambda e: guard_log.append((e.topic, e.message)), topic="guard"
    )
    for tenant in ("assembly", "annotation", "binning", "hostile"):
        events.subscribe(
            lambda e: guard_log.append((e.topic, e.message)),
            topic=f"tenant.{tenant}.guard",
        )
    cassandra = CassandraLike()
    scheduler = MiddlewareScheduler(
        cassandra,
        TableRafiki(cassandra),
        events=events,
        cluster_capacity=capacity,
        shedding=shedding,
    )
    for spec in build_fleet(victim_floor):
        scheduler.add_tenant(spec)
    scheduler.run()
    return scheduler, guard_log


def print_report(scheduler):
    for tenant_id, entry in scheduler.guard_report().items():
        slo = entry["slo"]
        print(
            f"   {tenant_id:<12} priority {entry['priority']}  "
            f"sheds {entry['sheds']:>2}  "
            f"SLO attainment {slo['attainment']:>6.1%}  "
            f"push breaker {entry['breakers']['push']['state']}"
        )


def main():
    print("== 1. Size the overload ==")
    probe, _ = run_fleet(None, 1.0, shedding=False)
    per_tenant = {
        t: probe.session(t).result.events[1].mean_throughput
        for t in probe.tenant_ids
    }
    victims = [t for t in per_tenant if t != "hostile"]
    victim_floor = min(per_tenant[v] for v in victims) * 0.8
    capacity = sum(per_tenant.values()) * 0.7
    print(
        f"   fleet demand {sum(per_tenant.values()):,.0f} ops/s vs "
        f"cluster capacity {capacity:,.0f} ops/s "
        f"(hostile alone: {per_tenant['hostile']:,.0f})"
    )

    print("\n== 2. Unguarded baseline: everyone silently degrades ==")
    unguarded, _ = run_fleet(capacity, victim_floor, shedding=False)
    print_report(unguarded)

    print("\n== 3. Guarded: the shedder defers the hostile tenant ==")
    guarded, guard_log = run_fleet(capacity, victim_floor, shedding=True)
    print_report(guarded)
    print(f"   {len(guard_log)} guard events, first few:")
    for topic, message in guard_log[:5]:
        print(f"     {topic}: {message}")

    print("\n== 4. Determinism: the guarded run replays bit-identically ==")
    _, replay_log = run_fleet(capacity, victim_floor, shedding=True)
    assert replay_log == guard_log
    print(f"   replay produced the identical {len(replay_log)}-event guard log")

    report = guarded.guard_report()
    assert report["hostile"]["sheds"] > 0
    assert all(report[v]["sheds"] == 0 for v in victims)
    for victim in victims:
        before = unguarded.guard_report()[victim]["slo"]["attainment"]
        after = report[victim]["slo"]["attainment"]
        assert after > before
    print("\nvictims kept their SLOs; the hostile tenant paid the overload")


if __name__ == "__main__":
    main()
