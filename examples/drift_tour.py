#!/usr/bin/env python3
"""Verified actuation in the multi-tenant serve layer, end to end.

A config push is not a transaction: on a real fleet it can silently
miss a node (partial push), and a crashed node can rejoin serving its
pre-crash knobs (stale recovery).  This tour runs the drift loop:

1. inject a partial push into a *blind* tenant (no reconciler) and
   show that nothing surfaces — the ring serves mixed configs and the
   only symptom is a throughput anomaly nobody can attribute,
2. turn the reconciler on: the same faults are detected within one
   window (``actuate.drift``), repaired by re-pushing only the drifted
   nodes (``actuate.reconciled``, charging the usual rolling-restart
   transient), and the affected windows are quarantined so the canary
   EWMA and SLO budget never ingest mixed-config throughput,
3. exhaust the repair budget: unrepairable drift escalates — the
   window degrades (``controller.degraded`` with ``reason="drift"``)
   and the push breaker trips open, so the tenant stops layering new
   pushes on an unverified ring,
4. re-run fault-free and verify the reconciler is invisible: the run
   is bit-identical to one without it.

Uses a deterministic table-fill recommender so the tour runs in
seconds; swap in a trained surrogate (see middleware_tour.py) for the
full pipeline.

    python examples/drift_tour.py
"""

from repro import (
    ActuationFault,
    CassandraLike,
    EventBus,
    FaultPlan,
    GuardSpec,
    MiddlewareScheduler,
    ReconcileSpec,
    StaleRecovery,
    TenantSpec,
    WorkloadSpec,
)
from repro.core.search import OptimizationResult

WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)
#: Regime changes at windows 4 and 8 force a config push at each.
RR_SERIES = [0.3] * 4 + [0.7] * 4 + [0.3] * 4

#: Window 4's push silently fails on node 1; node 2 crashes at window 6
#: and rejoins at window 9 having missed the window-8 push.
FAULT_PLAN = FaultPlan(
    actuation_faults=(ActuationFault(window=4, node=1),),
    stale_recoveries=(StaleRecovery(window=6, node=2, recover_window=9),),
)


class RegimeRafiki:
    """Deterministic stand-in recommender (one config per regime)."""

    def __init__(self, datastore):
        self.datastore = datastore
        self._cache = {}

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key not in self._cache:
            writes = 64 if read_ratio < 0.5 else 96
            self._cache[key] = OptimizationResult(
                configuration=self.datastore.default_configuration().with_updates(
                    concurrent_writes=writes
                ),
                predicted_throughput=0.0,
                evaluations=1,
                equivalent_wall_seconds=0.0,
                strategy="table",
            )
        return self._cache[key]


def run(fault_plan, reconcile, guard=None):
    events = EventBus()
    trace = []
    events.subscribe(
        lambda e: trace.append((e.topic, e.message, tuple(sorted(e.payload.items()))))
    )
    cassandra = CassandraLike()
    scheduler = MiddlewareScheduler(cassandra, RegimeRafiki(cassandra), events=events)
    scheduler.add_tenant(
        TenantSpec(
            tenant_id="archive",
            rr_series=RR_SERIES,
            base_workload=WORKLOAD,
            seed=3,
            n_nodes=3,
            window_seconds=120,
            restart_policy="rolling",
            restart_seconds_per_node=10,
            load=False,
            fault_plan=fault_plan,
            reconcile=reconcile,
            guard=guard,
        )
    )
    results = scheduler.run()
    return scheduler, results["archive"], trace


def show(trace, *topics):
    for topic, message, _ in trace:
        if any(topic.endswith(t) for t in topics):
            print(f"    [{topic.split('.', 2)[-1]}] {message}")


def main():
    print("=== 1. Blind actuation: the faults are invisible ===")
    _, blind, trace = run(FAULT_PLAN, reconcile=None)
    drift_events = [t for t, _, _ in trace if "actuate.drift" in t]
    print(f"  drift events published: {len(drift_events)}")
    print(f"  mean throughput:        {blind.mean_throughput:,.0f} ops/s")
    print("  node 1 served the old knobs from window 4 on; node 2 rejoined")
    print("  stale at window 9 — and nothing in the event log says so.\n")

    print("=== 2. Reconciler on: detect, repair, quarantine ===")
    _, run_on, trace = run(FAULT_PLAN, ReconcileSpec(max_repairs=2, span=8))
    show(trace, "actuate.drift", "actuate.reconciled", "cluster.node_recovered")
    quarantined = [e.window_index for e in run_on.events if e.quarantined]
    print(f"  quarantined windows:    {quarantined} (canary + SLO skip them)")
    print(f"  degraded windows:       "
          f"{[e.window_index for e in run_on.events if e.degraded]}\n")

    print("=== 3. Budget exhausted: drift escalates ===")
    stubborn = FaultPlan(
        actuation_faults=(ActuationFault(window=4, node=1, repairs_blocked=8),)
    )
    scheduler, run_esc, trace = run(
        stubborn, ReconcileSpec(max_repairs=1, span=16), guard=GuardSpec()
    )
    show(trace, "actuate.repair_failed", "actuate.repair_blocked",
         "controller.degraded", "guard.breaker.open")
    breaker = scheduler.session("archive").guard.push_breaker
    print(f"  push breaker opened:    {breaker.opened_count}x "
          "(re-closed after a half-open probe once the drift resolved)")
    print(f"  degraded windows:       "
          f"{[e.window_index for e in run_esc.events if e.degraded]}\n")

    print("=== 4. Fault-free: verification is invisible ===")
    _, _, trace_off = run(None, reconcile=None)
    _, _, trace_on = run(None, ReconcileSpec(max_repairs=2, span=8))
    print(f"  reconciler on == off (full event trace): {trace_on == trace_off}")


if __name__ == "__main__":
    main()
