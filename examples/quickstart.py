#!/usr/bin/env python3
"""Quickstart: tune a (simulated) Cassandra for a read-heavy workload.

Runs the full Rafiki pipeline — data collection on the simulated server,
surrogate training, GA search — and compares the recommended
configuration against the vendor defaults.

    python examples/quickstart.py
"""

import time

from repro import (
    CASSANDRA_KEY_PARAMETERS,
    CassandraLike,
    RafikiPipeline,
    YCSBBenchmark,
    mgrast_workload,
)


def main():
    cassandra = CassandraLike()
    base_workload = mgrast_workload(0.5)

    print("== Offline phase: collect 220 samples, train the surrogate ==")
    t0 = time.time()
    pipeline = RafikiPipeline(cassandra, base_workload, seed=7)
    # The paper's five key parameters; pass key_parameters=None to run
    # the ANOVA identification stage instead.
    rafiki, report = pipeline.run(key_parameters=CASSANDRA_KEY_PARAMETERS)
    print(f"   dataset: {len(report.dataset)} samples")
    print(f"   surrogate: ensemble of {report.surrogate.ensemble.active_count} nets")
    print(f"   offline wall time: {time.time() - t0:.1f}s\n")

    print("== Online phase: recommend configurations per workload ==")
    bench = YCSBBenchmark(cassandra)
    default_config = cassandra.default_configuration()
    for read_ratio in (0.1, 0.5, 0.9):
        t0 = time.time()
        result = rafiki.recommend(read_ratio)
        search_s = time.time() - t0

        workload = base_workload.with_read_ratio(read_ratio)
        default_tp = bench.run(default_config, workload, seed=99).mean_throughput
        tuned_tp = bench.run(result.configuration, workload, seed=99).mean_throughput

        print(f"read ratio {read_ratio:.0%}:")
        print(f"   search: {result.evaluations} surrogate calls in {search_s:.2f}s")
        print(f"   default: {default_tp:>9,.0f} ops/s")
        print(
            f"   rafiki:  {tuned_tp:>9,.0f} ops/s "
            f"({(tuned_tp / default_tp - 1) * 100:+.1f}%)"
        )
        for name, value in sorted(result.configuration.non_default_items().items()):
            shown = f"{value:.3f}" if isinstance(value, float) else value
            print(f"      {name} = {shown}")
        print()


if __name__ == "__main__":
    main()
