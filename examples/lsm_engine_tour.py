#!/usr/bin/env python3
"""A tour of the LSM storage substrate.

Rafiki tunes *mechanisms*; this example walks the mechanisms themselves
on the materialized engine: memtable flushes, SSTable accumulation,
compaction (both strategies), bloom filters, the file cache, and online
reconfiguration — all on simulated time.

    python examples/lsm_engine_tour.py
"""

from repro import CassandraLike
from repro.config.cassandra import LEVELED


def show(engine, label):
    stats = engine.stats
    print(
        f"   [{label}] t={engine.clock.now:8.3f}s  tables={engine.sstable_count:>3} "
        f"flushes={stats.flushes:>3} compactions={stats.compactions_completed:>2} "
        f"cache-hit={engine.cache.hit_ratio:5.1%}"
    )


def main():
    cassandra = CassandraLike()

    # A small-memtable configuration so the mechanics fire quickly.
    config = cassandra.space.configuration(
        memtable_heap_space_in_mb=256,
        memtable_offheap_space_in_mb=256,
        memtable_cleanup_threshold=0.1,
        file_cache_size_in_mb=64,
    )
    engine = cassandra.new_engine_instance(config)

    print("== Write path: commit log -> memtable -> flush -> SSTables ==")
    for i in range(300_000):
        engine.put(f"user{i:012d}", b"x" * 1500)
        if i in (60_000, 180_000, 299_999):
            show(engine, f"after {i + 1:,} writes")

    print("\n== Read path: bloom filters + file cache + disk probes ==")
    for i in range(0, 300_000, 3_000):
        engine.get(f"user{i:012d}")
    show(engine, "after 100 cold-ish reads")
    for _ in range(3):
        for i in range(0, 25_000, 2_500):
            engine.get(f"user{i:012d}")
    show(engine, "after re-reading a hot set")
    print(f"   bloom checks: {engine.stats.bloom_checks:,}, "
          f"true positives: {engine.stats.bloom_true_positives:,}")

    print("\n== Deletes are tombstones until compaction collects them ==")
    engine.delete("user000000000000")
    print(f"   get(deleted) -> {engine.get('user000000000000')}")

    print("\n== Background compaction (size-tiered) ==")
    drained = engine.idle_until_compact()
    show(engine, f"idled {drained:.1f}s")

    print("\n== Online reconfiguration: switch to leveled compaction ==")
    leveled = config.with_updates(compaction_method=LEVELED)
    engine.reconfigure(cassandra.effective_knobs(leveled))
    for i in range(300_000, 450_000):
        engine.put(f"user{i:012d}", b"x" * 1500)
    engine.idle_until_compact()
    show(engine, "leveled, after more writes")
    print(f"   levels: {[len(lvl) for lvl in engine.layout.levels]}")
    engine.layout.check_leveled_invariant()
    print("   leveled non-overlap invariant holds")

    print("\n== Data survives everything ==")
    assert engine.get("user000000000001") == b"x" * 1500
    assert engine.get("user000000449999") == b"x" * 1500
    assert engine.get("user000000000000") is None  # still deleted
    print("   all checks passed")


if __name__ == "__main__":
    main()
