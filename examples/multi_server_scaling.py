#!/usr/bin/env python3
"""Multi-server tuning: the paper's two-server experiment (Table 3).

Builds one- and two-node clusters (replication factor raised with the
node count, one YCSB shooter per server, as in §4.9) and compares the
Rafiki-tuned configuration against the defaults on each.

    python examples/multi_server_scaling.py
"""

import numpy as np

from repro import (
    CASSANDRA_KEY_PARAMETERS,
    CassandraLike,
    Cluster,
    RafikiPipeline,
    mgrast_workload,
)


def cluster_throughput(cassandra, config, read_ratio, n_nodes, seed=7):
    workload = mgrast_workload(read_ratio)
    cluster = Cluster(
        cassandra,
        config,
        n_nodes=n_nodes,
        replication_factor=n_nodes,
        n_shooters=n_nodes,
        profile=workload.to_profile(),
        seed=seed,
    )
    cluster.load(workload.n_keys)
    cluster.settle()
    steps = cluster.run(read_ratio, duration=300)
    return float(np.mean([s.throughput for s in steps]))


def main():
    cassandra = CassandraLike()

    print("== Train Rafiki once (single-server profile) ==")
    pipeline = RafikiPipeline(cassandra, mgrast_workload(0.5), seed=21)
    rafiki, _ = pipeline.run(key_parameters=CASSANDRA_KEY_PARAMETERS)
    print("   done\n")

    default_config = cassandra.default_configuration()
    print("            |   single server      |   two servers (RF=2)")
    print("   workload |  default     rafiki  |  default     rafiki   ")
    for read_ratio in (0.1, 0.5, 1.0):
        tuned_config = rafiki.recommend(read_ratio).configuration
        row = [f"   RR={read_ratio:>4.0%} |"]
        improvements = []
        for n_nodes in (1, 2):
            base = cluster_throughput(cassandra, default_config, read_ratio, n_nodes)
            tuned = cluster_throughput(cassandra, tuned_config, read_ratio, n_nodes)
            improvements.append(tuned / base - 1.0)
            row.append(f" {base:>8,.0f} {tuned:>9,.0f}  |")
        print("".join(row) + f"  gains: {improvements[0]:+.1%} / {improvements[1]:+.1%}")

    print(
        "\n   Note the write-heavy row: with RF=2 every write lands on both"
        "\n   nodes, so the second server (and tuning) buys little at RR=10%"
        "\n   — the paper's Table 3 shows the same collapse (15.2% -> 3.2%)."
    )


if __name__ == "__main__":
    main()
