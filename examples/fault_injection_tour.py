#!/usr/bin/env python3
"""Fault injection and the self-healing tuning loop, end to end.

The paper's evaluation assumes a healthy testbed; this tour breaks one
on purpose:

1. train Rafiki offline on a tiny budget (as in the quickstart),
2. build a deterministic FaultPlan — one of four cluster nodes crashes
   mid-trace, right as the workload's regime shift triggers a
   reconfiguration, plus a burst of transient search faults,
3. replay the trace with retry, degraded-mode, and canary-rollback
   guardrails enabled, printing every fault and recovery event as the
   controller rides through them.

Because plan and controller share nothing but seeds, re-running this
script reproduces the identical event sequence.

    python examples/fault_injection_tour.py
"""

from repro import (
    CASSANDRA_KEY_PARAMETERS,
    CassandraLike,
    EventBus,
    FaultPlan,
    RafikiPipeline,
    mgrast_workload,
)
from repro.bench.ycsb import YCSBBenchmark
from repro.core.controller import OnlineController, RetryPolicy
from repro.faults import DiskSlowdown, NodeCrash, TransientFault
from repro.ml.ensemble import EnsembleConfig


def main():
    print("== 1. Train Rafiki offline (tiny budget) ==")
    cassandra = CassandraLike()
    base_workload = mgrast_workload(0.5)
    pipeline = RafikiPipeline(
        cassandra,
        base_workload,
        benchmark=YCSBBenchmark(cassandra, run_seconds=30),
        ensemble_config=EnsembleConfig(n_networks=4, max_epochs=60),
        n_workloads=5,
        n_configurations=8,
        n_faulty=2,
        seed=11,
    )
    rafiki, _ = pipeline.run(key_parameters=CASSANDRA_KEY_PARAMETERS)
    print("   done")

    print("\n== 2. Write the fault schedule ==")
    # A regime shift at window 4 makes the controller push a new config;
    # the same window crashes node 1 of 4 and degrades node 2's disk, so
    # the canary sees the throughput collapse and blames the push.  The
    # search at window 4 also fails once, which the retry policy absorbs.
    rr_series = [0.2, 0.2, 0.2, 0.2, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9]
    plan = FaultPlan(
        node_crashes=(NodeCrash(window=4, node=1, recover_window=6),),
        disk_slowdowns=(DiskSlowdown(window=4, node=2, factor=3.0, end_window=6),),
        transient_faults=(TransientFault(kind="search", window=4, failures=1),),
    )
    print(f"   {plan.to_json()}")

    print("\n== 3. Replay with guardrails, watching the event stream ==")
    events = EventBus()
    events.subscribe(lambda e: print(f"   {e}"), topic="fault")
    events.subscribe(lambda e: print(f"   {e}"), topic="controller")
    controller = OnlineController(
        cassandra,
        rafiki,
        base_workload,
        window_seconds=60,
        rr_change_threshold=0.1,
        events=events,
        fault_plan=plan,
        n_nodes=4,
        replication_factor=2,
        retry=RetryPolicy(max_attempts=3, backoff_s=2.0),
        # The tiny 4-net ensemble is very unsure about the read-heavy
        # regime; a softer std factor keeps the guard decisive.
        canary_margin=0.2,
        canary_std_factor=0.5,
        seed=7,
    )
    run = controller.run(rr_series, load=False)

    print("\n== 4. What the run survived ==")
    print(f"   windows:          {len(run.events)}")
    print(f"   mean throughput:  {run.mean_throughput:>9,.0f} ops/s")
    print(f"   reconfigurations: {run.reconfiguration_count}")
    print(f"   rollbacks:        {run.rollback_count}")
    print(f"   degraded windows: {run.degraded_count}")

    print("\n   window  RR    throughput  flags")
    for ev in run.events:
        flags = "".join(
            label
            for cond, label in (
                (ev.reconfigured, " reconfig"),
                (ev.rolled_back, " ROLLBACK"),
                (ev.degraded, " degraded"),
            )
            if cond
        )
        print(
            f"   {ev.window_index:>5}  {ev.read_ratio:.2f} "
            f"{ev.mean_throughput:>10,.0f} {flags}"
        )
    assert run.rollback_count >= 1, "expected the canary to fire"
    print("\n   same plan + same seed => identical event sequence every run")


if __name__ == "__main__":
    main()
