#!/usr/bin/env python
"""Assert the repro import DAG: lower layers never import upward.

The package is layered (see DESIGN.md, "Middleware service layer")::

    sim / runtime / errors          rank 0   substrate + plumbing
    config / faults                 rank 1   vocabulary
    lsm                             rank 2   storage engine
    workload / datastore            rank 3   load + servers
    ml / ga / analysis              rank 4   learning + search
    recovery                        rank 5   crash-safety
    bench                           rank 6   offline campaign
    core                            rank 7   Rafiki + legacy controller
    middleware                      rank 8   multi-tenant service layer
    cli / __main__ / package root   rank 9   entry points

A *module-level* import may only target the same or a lower rank.
Function-level (lazy) imports are the sanctioned escape hatch for
deprecated shims — e.g. ``core.controller`` building its middleware
session, or ``ml.ensemble`` reaching into ``recovery`` for checkpoints —
because they defer the dependency to call time and cannot create an
import cycle.  This script therefore scans only statements that execute
at import time (module and class bodies; function bodies are skipped).

Run from the repo root::

    PYTHONPATH=src python scripts/check_layering.py

Exit status 0 = DAG holds; 1 = at least one upward import, each printed
as ``file:line: <importer> (rank a) -> <target> (rank b)``.

Pure stdlib (ast only) so the CI lint job needs no third-party deps.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: First path component under ``repro.`` -> layer rank.
LAYERS = {
    "errors": 0,
    "sim": 0,
    "runtime": 0,
    "config": 1,
    "faults": 1,
    "lsm": 2,
    "workload": 3,
    "datastore": 3,
    "ml": 4,
    "ga": 4,
    "analysis": 4,
    "recovery": 5,
    "bench": 6,
    "core": 7,
    "middleware": 8,
    "cli": 9,
    "__main__": 9,
    "__init__": 9,  # the package root facade re-exports everything
}

#: Intra-package sublayers (second path component -> sub-rank) for
#: packages whose internal import order is itself a contract.  The
#: middleware's guard stack sits *below* the session/scheduler tiers it
#: protects: slo/breaker/ledger are leaf vocabulary, guard composes
#: them, session consults a guard (duck-typed, no import), the scheduler
#: owns the ledger, and the manifest builds specs for all of it.
SUBLAYERS = {
    "middleware": {
        "slo": 0,
        "breaker": 0,
        "ledger": 0,
        "guard": 1,
        # The drift reconciler is a peer of the guard: leaf machinery the
        # session consults (duck-typed) but never the other way around.
        "reconcile": 1,
        "session": 2,
        "scheduler": 3,
        "manifest": 4,
        "__init__": 5,  # the package facade re-exports every tier
    },
    # The datastore's actuation stack is ordered too: base servers are
    # leaves, the analytic cluster composes them (and owns the per-node
    # applied-config state), the materialized ring and the adapter sit
    # on top of the cluster.
    "datastore": {
        "base": 0,
        "cassandra": 1,
        "scylla": 1,
        "cluster": 1,
        "ring": 2,
        "adapter": 2,
        "__init__": 3,
    },
    # Runtime: events and deprecation are leaf vocabulary; the state
    # shipper publishes on the bus, and the pool backend is a peer that
    # may one day warm worker caches itself.
    "runtime": {
        "deprecation": 0,
        "events": 0,
        "stateship": 1,
        "backend": 1,
        "__init__": 2,
    },
}


def module_name(path: Path, src: Path) -> str:
    rel = path.relative_to(src).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def layer_of(module: str):
    """Rank of a ``repro...`` module, or None if foreign.

    Ranks are ``(layer, sublayer)`` tuples so packages listed in
    SUBLAYERS get their internal order checked too; elsewhere the
    sublayer is 0 and the comparison degenerates to the layer rank.
    """
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    head = parts[1] if len(parts) > 1 else "__init__"
    if head not in LAYERS:
        raise SystemExit(
            f"unknown subpackage 'repro.{head}' — add it to LAYERS in "
            f"{__file__} (pick its rank deliberately)"
        )
    sub = 0
    if head in SUBLAYERS:
        name = parts[2] if len(parts) > 2 else "__init__"
        if name not in SUBLAYERS[head]:
            raise SystemExit(
                f"unknown module 'repro.{head}.{name}' — add it to "
                f"SUBLAYERS[{head!r}] in {__file__} (pick its sub-rank "
                "deliberately)"
            )
        sub = SUBLAYERS[head][name]
    return (LAYERS[head], sub)


def rank_label(rank) -> str:
    """Human form of a ``(layer, sublayer)`` rank: ``8.1``, or just ``8``."""
    layer, sub = rank
    return f"{layer}.{sub}" if sub else str(layer)


def import_time_nodes(tree: ast.AST):
    """Yield Import/ImportFrom nodes that execute at import time."""
    stack = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # lazy imports inside functions are the escape hatch
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
            continue
        stack.extend(ast.iter_child_nodes(node))


def imported_modules(node, importer: str):
    """Dotted targets of one import node, relative imports resolved."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
        return
    base = node.module or ""
    if node.level:  # relative: resolve against the importer's package
        pkg_parts = importer.split(".")
        anchor = pkg_parts[: len(pkg_parts) - node.level + 1][:-1] or pkg_parts[:1]
        base = ".".join(anchor + ([base] if base else []))
    yield base


def check(src: Path):
    violations = []
    for path in sorted(src.rglob("*.py")):
        importer = module_name(path, src)
        importer_rank = layer_of(importer if importer else "repro")
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in import_time_nodes(tree):
            for target in imported_modules(node, importer):
                target_rank = layer_of(target)
                if target_rank is None:  # stdlib / third-party
                    continue
                if target_rank > importer_rank:
                    violations.append(
                        f"{path}:{node.lineno}: {importer} (rank "
                        f"{rank_label(importer_rank)}) -> {target} "
                        f"(rank {rank_label(target_rank)})"
                    )
    return violations


def main() -> int:
    src = Path(__file__).resolve().parent.parent / "src"
    if not (src / "repro").is_dir():
        print(f"cannot find src/repro under {src}", file=sys.stderr)
        return 1
    violations = check(src)
    if violations:
        print(f"{len(violations)} upward import(s) break the layer DAG:")
        for v in violations:
            print(f"  {v}")
        return 1
    n_modules = sum(1 for _ in (src / "repro").rglob("*.py"))
    print(f"layering OK: {n_modules} modules respect the import DAG")
    return 0


if __name__ == "__main__":
    sys.exit(main())
