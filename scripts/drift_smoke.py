#!/usr/bin/env python3
"""CI drift-smoke: verified actuation must detect, repair, and replay.

One 3-node tenant runs a 12-window campaign with rolling restarts and a
regime-switching recommender (its read-ratio series changes regime at
windows 4 and 8, so config pushes land exactly there).  A hand-written
fault plan injects:

* an ``ActuationFault`` at window 4 on node 1 — the push silently fails
  on that node (partial push), and
* a ``StaleRecovery`` at window 6 on node 2, rejoining at window 9 —
  the node misses the window-8 push and comes back on stale knobs.

The job fails unless:

* both drifts are detected within one window of becoming observable
  (the partial push in its own window; the stale rejoin in the rejoin
  window) via ``actuate.drift`` events,
* every detected drift is repaired within the configured repair budget
  (``actuate.reconciled`` in the same window) and the affected windows
  are quarantined,
* the faulted run is reproducible, and sharded across ``workers=2`` it
  reproduces the identical drift/repair/quarantine event sequence,
* with no actuation faults, a reconciler-enabled run is bit-identical
  (summaries and full event trace) to a reconciler-less run, serial and
  sharded — verification is free when nothing drifts.

    PYTHONPATH=src python scripts/drift_smoke.py
"""

from __future__ import annotations

import sys
import traceback

from repro.core.search import OptimizationResult
from repro.datastore import CassandraLike
from repro.faults import ActuationFault, FaultPlan, StaleRecovery
from repro.middleware import MiddlewareScheduler, ReconcileSpec, TenantSpec
from repro.runtime import EventBus
from repro.workload.spec import WorkloadSpec

WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)
N_WINDOWS = 12
#: Regime changes at windows 4 and 8 force a config push at each.
RR_SERIES = [0.3] * 4 + [0.7] * 4 + [0.3] * 4

FAULT_PLAN = FaultPlan(
    actuation_faults=(ActuationFault(window=4, node=1),),
    stale_recoveries=(StaleRecovery(window=6, node=2, recover_window=9),),
)


class RegimeRafiki:
    """Per-regime table recommender (picklable for sharded workers)."""

    def __init__(self, datastore):
        self.datastore = datastore
        self._cache = {}

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key not in self._cache:
            # Distinct knobs per regime so a regime change is a real push.
            writes = 64 if read_ratio < 0.5 else 96
            self._cache[key] = OptimizationResult(
                configuration=self.datastore.default_configuration().with_updates(
                    concurrent_writes=writes
                ),
                predicted_throughput=0.0,
                evaluations=1,
                equivalent_wall_seconds=0.0,
                strategy="table",
            )
        return self._cache[key]


def run_campaign(fault_plan, reconcile, workers=None):
    """One campaign; returns (summary, event trace)."""
    events = EventBus()
    trace = []

    def record(e):
        # State-shipping telemetry depends on which worker got which task,
        # so it is exempt from serial==sharded equivalence (see DESIGN.md).
        if not e.topic.startswith("backend.state"):
            trace.append((e.topic, e.message, tuple(sorted(e.payload.items()))))

    events.subscribe(record)
    cassandra = CassandraLike()
    scheduler = MiddlewareScheduler(
        cassandra, RegimeRafiki(cassandra), events=events, workers=workers
    )
    scheduler.add_tenant(
        TenantSpec(
            tenant_id="tuned",
            rr_series=RR_SERIES,
            base_workload=WORKLOAD,
            seed=3,
            n_nodes=3,
            window_seconds=120,
            restart_policy="rolling",
            restart_seconds_per_node=10,
            load=False,
            fault_plan=fault_plan,
            reconcile=reconcile,
        )
    )
    results = scheduler.run()
    summary = {
        tenant_id: [
            (e.window_index, e.mean_throughput, e.reconfigured,
             e.degraded, e.quarantined)
            for e in run.events
        ]
        for tenant_id, run in results.items()
    }
    return summary, trace


def windows_of(trace, topic):
    return [
        dict(payload)["window"]
        for t, _, payload in trace
        if t == f"tenant.tuned.{topic}"
    ]


def main() -> int:
    failures = []
    spec = ReconcileSpec(max_repairs=2, span=8)
    try:
        faulted, trace = run_campaign(FAULT_PLAN, spec)
        _, retrace = run_campaign(FAULT_PLAN, spec)
        _, shtrace = run_campaign(FAULT_PLAN, spec, workers=2)
        clean_off, clean_off_trace = run_campaign(None, None)
        clean_on, clean_on_trace = run_campaign(None, spec)
        clean_sh_on, clean_sh_on_trace = run_campaign(None, spec, workers=2)
        clean_sh_off, clean_sh_off_trace = run_campaign(None, None, workers=2)
    except Exception:
        traceback.print_exc()
        print("DRIFT SMOKE: unhandled exception", file=sys.stderr)
        return 1

    drifts = windows_of(trace, "actuate.drift")
    repairs = windows_of(trace, "actuate.reconciled")
    quarantines = windows_of(trace, "actuate.quarantine")
    # The partial push is observable at window 4 (the push window); the
    # stale rejoin at window 9 (the recover window).  "Within one
    # window" means detection at the observable window itself.
    if drifts != [4, 9]:
        failures.append(f"expected drift detection at windows [4, 9], got {drifts}")
    if repairs != drifts:
        failures.append(
            f"drift at windows {drifts} but repairs at {repairs} — "
            "not repaired within the budget"
        )
    if quarantines != drifts:
        failures.append(
            f"drifted windows {drifts} but quarantined {quarantines}"
        )
    quarantined_windows = [
        w for (w, _, _, _, quarantined) in faulted["tuned"] if quarantined
    ]
    if quarantined_windows != drifts:
        failures.append(
            f"sealed events quarantine {quarantined_windows}, "
            f"expected {drifts}"
        )
    if any(degraded for (_, _, _, degraded, _) in faulted["tuned"]):
        failures.append(
            "no window should degrade: both drifts are repairable in budget"
        )
    if trace != retrace:
        failures.append("faulted run not reproducible across reruns")
    if trace != shtrace:
        failures.append(
            "sharded faulted run diverges from serial "
            "(drift/repair/quarantine sequences must be identical)"
        )
    if (clean_on, clean_on_trace) != (clean_off, clean_off_trace):
        failures.append(
            "fault-free run with reconciliation differs from one without "
            "(verification must be free when nothing drifts)"
        )
    if (clean_sh_on, clean_sh_on_trace) != (clean_sh_off, clean_sh_off_trace):
        failures.append("fault-free sharded runs differ with reconciliation on")
    if clean_on != clean_off or clean_sh_on != clean_on:
        failures.append("fault-free serial and sharded summaries diverge")

    print(f"drift detected:   windows {drifts} (expected [4, 9])")
    print(f"repaired:         windows {repairs} (budget "
          f"{spec.max_repairs}/{spec.span} windows)")
    print(f"quarantined:      windows {quarantined_windows}")
    print(f"events on bus:    {len(trace)} "
          f"(rerun identical: {trace == retrace}, "
          f"sharded identical: {trace == shtrace})")
    print(f"fault-free:       reconciler on == off: "
          f"{clean_on_trace == clean_off_trace}, "
          f"sharded identical: {clean_sh_on_trace == clean_sh_off_trace}")
    if failures:
        for failure in failures:
            print(f"DRIFT SMOKE FAILED: {failure}", file=sys.stderr)
        return 1
    print("drift smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
