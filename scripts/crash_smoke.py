#!/usr/bin/env python3
"""CI crash-smoke: SIGKILL a journaled campaign, resume, diff.

End-to-end proof of the crash-safety story across real process
boundaries (not a truncated-file simulation):

1. run an uninterrupted journaled collection campaign -> reference
   dataset,
2. spawn the identical campaign as a subprocess and ``SIGKILL -9`` it
   once its journal shows mid-campaign progress,
3. ``repro resume`` from the surviving journal,
4. require the resumed dataset to be byte-identical to the reference
   and ``repro verify-artifact`` to pass on it.

    PYTHONPATH=src python scripts/crash_smoke.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}

COLLECT_ARGS = [
    "--workloads", "4",
    "--configurations", "4",
    "--faulty", "1",
    "--seed", "17",
    # Long simulated runs make each sample slow enough (in wall-clock)
    # that the kill reliably lands mid-campaign.
    "--run-seconds", "4000",
    "--quiet",
]
TOTAL_SAMPLES = 4 * 4
KILL_AFTER_SAMPLES = 4
KILL_DEADLINE_S = 300.0


def repro(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=ENV, cwd=REPO, capture_output=True, text=True,
    )


def journal_samples(journal: pathlib.Path) -> int:
    if not journal.exists():
        return 0
    return max(0, journal.read_text().count("\n") - 1)  # minus header


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="crash-smoke-"))
    reference = workdir / "reference.json"
    resumed = workdir / "resumed.json"
    journal = workdir / "campaign.wal"

    print(f"[1/4] uninterrupted reference campaign ({TOTAL_SAMPLES} samples)")
    proc = repro(
        "collect", "--out", str(reference),
        "--journal", str(workdir / "reference.wal"), *COLLECT_ARGS,
    )
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        print("FAIL: reference campaign errored", file=sys.stderr)
        return 1

    print(f"[2/4] SIGKILL a live campaign after >={KILL_AFTER_SAMPLES} samples")
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro", "collect",
         "--out", str(workdir / "never-written.json"),
         "--journal", str(journal), *COLLECT_ARGS],
        env=ENV, cwd=REPO,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + KILL_DEADLINE_S
    while time.monotonic() < deadline:
        if journal_samples(journal) >= KILL_AFTER_SAMPLES:
            break
        if victim.poll() is not None:
            print("FAIL: campaign finished before the kill landed "
                  f"({journal_samples(journal)} samples)", file=sys.stderr)
            return 1
        time.sleep(0.02)
    victim.send_signal(signal.SIGKILL)
    victim.wait()
    killed_at = journal_samples(journal)
    if not (KILL_AFTER_SAMPLES <= killed_at < TOTAL_SAMPLES):
        print(f"FAIL: kill landed at {killed_at}/{TOTAL_SAMPLES} samples — "
              "not mid-campaign", file=sys.stderr)
        return 1
    print(f"      killed with {killed_at}/{TOTAL_SAMPLES} durable samples")

    print("[3/4] resume from the surviving journal")
    proc = repro("resume", "--journal", str(journal), "--out", str(resumed),
                 "--quiet")
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        print("FAIL: resume errored", file=sys.stderr)
        return 1

    print("[4/4] diff resumed dataset against the reference")
    if resumed.read_bytes() != reference.read_bytes():
        print("FAIL: resumed dataset differs from uninterrupted reference",
              file=sys.stderr)
        return 1
    proc = repro("verify-artifact", str(resumed))
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        print("FAIL: resumed dataset failed verification", file=sys.stderr)
        return 1

    print("OK: kill -9 mid-campaign, resumed bit-identical dataset "
          f"({TOTAL_SAMPLES - killed_at} samples re-run, not {TOTAL_SAMPLES})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
