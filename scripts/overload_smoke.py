#!/usr/bin/env python3
"""CI overload-smoke: the guard layer must protect victims from a hog.

Four tenants share one modeled cluster: three small "victim" tenants
with throughput-floor SLOs and one 4-node "hostile" tenant whose demand
pushes the fleet past the shared capacity.  The fleet runs twice —
unguarded (no admission control: the ledger models the overload and
every window scales down proportionally) and guarded (priority shedding
on) — and the job fails unless:

* both runs complete with zero unhandled exceptions,
* the guarded run sheds the hostile tenant (``guard.shed`` events) and
  opens at least one circuit breaker on it,
* no victim is ever shed, and every victim's SLO attainment is
  *strictly better* guarded than unguarded,
* rerunning the guarded fleet reproduces the identical event sequence,
* the guarded fleet sharded across ``workers=2`` reproduces the
  identical event sequence (shedding and breakers are deterministic
  under the sharded serve path too).

    PYTHONPATH=src python scripts/overload_smoke.py
"""

from __future__ import annotations

import sys
import traceback

from repro.core.search import OptimizationResult
from repro.datastore import CassandraLike
from repro.middleware import (
    GuardSpec,
    MiddlewareScheduler,
    SloSpec,
    TenantSpec,
)
from repro.runtime import EventBus
from repro.workload.spec import WorkloadSpec

WORKLOAD = WorkloadSpec(read_ratio=0.5, n_keys=100_000)
N_WINDOWS = 12
VICTIMS = ("assembly", "annotation", "binning")


class TableRafiki:
    """Deterministic table-fill recommender (picklable for workers)."""

    def __init__(self, datastore):
        self.datastore = datastore
        self._cache = {}

    def recommend(self, read_ratio, use_cache=True):
        key = round(read_ratio, 2)
        if key not in self._cache:
            self._cache[key] = OptimizationResult(
                configuration=self.datastore.default_configuration(),
                predicted_throughput=0.0,
                evaluations=1,
                equivalent_wall_seconds=0.0,
                strategy="table",
            )
        return self._cache[key]


def fleet(victim_floor):
    """Three guarded victims plus one oversized hostile tenant."""
    slo = SloSpec(throughput_floor=victim_floor, window_span=6, error_budget=0.2)
    specs = [
        TenantSpec(
            tenant_id=tenant_id,
            rr_series=[rr] * N_WINDOWS,
            base_workload=WORKLOAD,
            seed=i + 1,
            window_seconds=30,
            load=False,
            priority=0,
            slo=slo,
        )
        for i, (tenant_id, rr) in enumerate(
            zip(VICTIMS, (0.3, 0.6, 0.45))
        )
    ]
    specs.append(
        TenantSpec(
            tenant_id="hostile",
            rr_series=[0.5] * N_WINDOWS,
            base_workload=WORKLOAD,
            seed=9,
            window_seconds=30,
            load=False,
            n_nodes=4,
            priority=5,
            slo=SloSpec(
                throughput_floor=victim_floor, window_span=6, error_budget=0.2
            ),
            guard=GuardSpec(breaker_failures=3, breaker_cooldown=3),
        )
    )
    return specs


def run_fleet(capacity, victim_floor, shedding, workers=None):
    """One campaign; returns (scheduler, per-tenant summary, event trace)."""
    events = EventBus()
    trace = []

    def record(e):
        # State-shipping telemetry depends on which worker got which task,
        # so it is exempt from serial==sharded equivalence (see DESIGN.md).
        if not e.topic.startswith("backend.state"):
            trace.append((e.topic, e.message, tuple(sorted(e.payload.items()))))

    events.subscribe(record)
    cassandra = CassandraLike()
    scheduler = MiddlewareScheduler(
        cassandra,
        TableRafiki(cassandra),
        events=events,
        workers=workers,
        cluster_capacity=capacity,
        shedding=shedding,
    )
    for spec in fleet(victim_floor):
        scheduler.add_tenant(spec)
    results = scheduler.run()
    summary = {
        tenant_id: [
            (e.window_index, e.mean_throughput, e.shed) for e in run.events
        ]
        for tenant_id, run in results.items()
    }
    return scheduler, summary, trace


def slo_attainment(scheduler, tenant_id):
    return scheduler.guard_report()[tenant_id]["slo"]["attainment"]


def main() -> int:
    failures = []
    try:
        # Probe run: size the capacity between victims-only demand and
        # full-fleet demand, and the victims' floor below their healthy
        # throughput, so only the hostile tenant forces an overload.
        _, probe, _ = run_fleet(None, 1.0, shedding=False)
        per_tenant = {t: probe[t][1][1] for t in probe}
        victim_floor = min(per_tenant[v] for v in VICTIMS) * 0.8
        capacity = sum(per_tenant.values()) * 0.7

        unguarded_sch, unguarded, _ = run_fleet(
            capacity, victim_floor, shedding=False
        )
        guarded_sch, guarded, trace = run_fleet(
            capacity, victim_floor, shedding=True
        )
        _, rerun, retrace = run_fleet(capacity, victim_floor, shedding=True)
        _, sharded, shtrace = run_fleet(
            capacity, victim_floor, shedding=True, workers=2
        )
    except Exception:
        traceback.print_exc()
        print("OVERLOAD SMOKE: unhandled exception", file=sys.stderr)
        return 1

    report = guarded_sch.guard_report()
    hostile_sheds = report["hostile"]["sheds"]
    hostile_opens = sum(
        b["opens"] for b in report["hostile"]["breakers"].values()
    )
    if hostile_sheds < 1:
        failures.append("hostile tenant was never shed")
    if hostile_opens < 1:
        failures.append("no circuit breaker opened on the hostile tenant")
    for victim in VICTIMS:
        if report[victim]["sheds"] > 0:
            failures.append(f"victim {victim!r} was shed")
        before = slo_attainment(unguarded_sch, victim)
        after = slo_attainment(guarded_sch, victim)
        if not after > before:
            failures.append(
                f"victim {victim!r} SLO attainment did not improve: "
                f"{before:.1%} unguarded vs {after:.1%} guarded"
            )
    if (guarded, trace) != (rerun, retrace):
        failures.append("guarded run not reproducible across reruns")
    if (guarded, trace) != (sharded, shtrace):
        failures.append("sharded guarded run diverges from serial")

    shed_events = [t for t in trace if t[0] == "guard.shed"]
    print(f"capacity:         {capacity:,.0f} ops/s "
          f"(victim floor {victim_floor:,.0f} ops/s)")
    print(f"hostile sheds:    {hostile_sheds} ({len(shed_events)} guard.shed events)")
    print(f"hostile breakers: {hostile_opens} open(s)")
    for victim in VICTIMS:
        print(
            f"victim {victim:<12} SLO {slo_attainment(unguarded_sch, victim):.1%}"
            f" unguarded -> {slo_attainment(guarded_sch, victim):.1%} guarded"
        )
    print(f"events on bus:    {len(trace)} "
          f"(rerun identical: {trace == retrace}, "
          f"sharded identical: {trace == shtrace})")
    if failures:
        for failure in failures:
            print(f"OVERLOAD SMOKE FAILED: {failure}", file=sys.stderr)
        return 1
    print("overload smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
