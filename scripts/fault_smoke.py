#!/usr/bin/env python3
"""CI fault-smoke: the self-healing loop must survive a canned plan.

Trains a tiny-budget Rafiki, then drives the online controller through
a fixed FaultPlan — a node crash plus a disk slowdown landing in the
same window as a regime-shift reconfiguration, and transient
search/push faults — with every guardrail enabled.  The job fails
unless:

* the run completes with zero unhandled exceptions,
* the canary fired at least one ``controller.rollback``,
* replaying the identical plan + seed reproduces the identical
  event sequence.

    PYTHONPATH=src python scripts/fault_smoke.py
"""

from __future__ import annotations

import sys
import traceback

from repro import (
    CASSANDRA_KEY_PARAMETERS,
    CassandraLike,
    EventBus,
    FaultPlan,
    RafikiPipeline,
    mgrast_workload,
)
from repro.bench.ycsb import YCSBBenchmark
from repro.core.controller import OnlineController, RetryPolicy
from repro.faults import DiskSlowdown, NodeCrash, TransientFault
from repro.ml.ensemble import EnsembleConfig

RR_SERIES = [0.2, 0.2, 0.2, 0.2, 0.9, 0.9, 0.9, 0.9]

PLAN = FaultPlan(
    node_crashes=(NodeCrash(window=4, node=1, recover_window=6),),
    disk_slowdowns=(DiskSlowdown(window=4, node=2, factor=3.0, end_window=6),),
    transient_faults=(
        TransientFault(kind="search", window=4, failures=1),
        TransientFault(kind="push", window=0, failures=1),
    ),
)


def train_rafiki(cassandra):
    pipeline = RafikiPipeline(
        cassandra,
        mgrast_workload(0.5),
        benchmark=YCSBBenchmark(cassandra, run_seconds=30),
        ensemble_config=EnsembleConfig(n_networks=4, max_epochs=60),
        n_workloads=5,
        n_configurations=8,
        n_faulty=2,
        seed=11,
    )
    rafiki, _ = pipeline.run(key_parameters=CASSANDRA_KEY_PARAMETERS)
    return rafiki


def one_run(cassandra, rafiki):
    """One guarded controller pass; returns (run, event trace)."""
    bus = EventBus()
    trace = []
    bus.subscribe(
        lambda e: trace.append(
            (e.topic, e.message, tuple(sorted(e.payload.items())))
        )
    )
    controller = OnlineController(
        cassandra,
        rafiki,
        mgrast_workload(0.5),
        window_seconds=60,
        rr_change_threshold=0.1,
        events=bus,
        fault_plan=PLAN,
        n_nodes=4,
        replication_factor=2,
        retry=RetryPolicy(max_attempts=3, backoff_s=2.0),
        canary_margin=0.2,
        canary_std_factor=0.5,
        seed=7,
    )
    return controller.run(RR_SERIES, load=False), trace


def main() -> int:
    failures = []
    try:
        cassandra = CassandraLike()
        rafiki = train_rafiki(cassandra)
        run, trace = one_run(cassandra, rafiki)
        rerun, retrace = one_run(cassandra, rafiki)
    except Exception:
        traceback.print_exc()
        print("FAULT SMOKE: unhandled exception", file=sys.stderr)
        return 1

    if len(run.events) != len(RR_SERIES):
        failures.append(
            f"run truncated: {len(run.events)}/{len(RR_SERIES)} windows"
        )
    if run.rollback_count < 1:
        failures.append("canary never rolled back")
    rollback_events = [t for t in trace if t[0] == "controller.rollback"]
    if not rollback_events:
        failures.append("no controller.rollback event on the bus")
    retry_events = [t for t in trace if t[0] == "controller.retry"]
    if not retry_events:
        failures.append("no controller.retry event (retry path never ran)")
    if trace != retrace:
        failures.append("event sequence not reproducible across reruns")

    print(f"windows:          {len(run.events)}")
    print(f"mean throughput:  {run.mean_throughput:,.0f} ops/s")
    print(f"reconfigurations: {run.reconfiguration_count}")
    print(f"rollbacks:        {run.rollback_count}")
    print(f"retries:          {len(retry_events)}")
    print(f"events on bus:    {len(trace)} (rerun identical: {trace == retrace})")
    if failures:
        for failure in failures:
            print(f"FAULT SMOKE FAILED: {failure}", file=sys.stderr)
        return 1
    print("fault smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
